package rpc

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hammerhead/internal/bullshark"
	"hammerhead/internal/checkpoint"
	"hammerhead/internal/execution"
	"hammerhead/internal/mempool"
	"hammerhead/internal/metrics"
	"hammerhead/internal/types"
	"hammerhead/pkg/rpcapi"
)

const (
	// DefaultHistoryDepth is how many recent commits the gateway retains for
	// SSE resume. A client further behind receives a gap event and resumes
	// from the oldest retained sequence.
	DefaultHistoryDepth = 4096
	// maxSubmitBody bounds one POST /v1/tx body.
	maxSubmitBody = 8 << 20
	// maxTxIDsPerEvent caps the per-commit ID list carried on the stream;
	// TxCount always reports the true size.
	maxTxIDsPerEvent = 1 << 14
)

// Config wires a Gateway to its node. Submit is required; everything else
// degrades gracefully when absent (reads 501, status partial).
type Config struct {
	// Addr is the listen address (":0" binds an ephemeral port; see Addr()).
	Addr string
	// Validator is the serving node's ID, echoed in /v1/status.
	Validator types.ValidatorID
	// Submit admits one client transaction into the node's fair-admission
	// mempool. It must be safe for concurrent use and is expected to return
	// mempool.ErrFull under lane backpressure.
	Submit func(client string, tx types.Transaction) error
	// Lane maps a client ID to its admission lane (echoed to clients so they
	// can reason about fairness); nil reports lane 0.
	Lane func(client string) int
	// LaneStats feeds /v1/status and the lane-depth gauge; nil omits lanes.
	LaneStats func() []mempool.LaneStats
	// RedirectSubmit, when non-empty, turns POST /v1/tx into a 307 redirect
	// toward one of these validator gateway base URLs (rotating across them)
	// instead of admitting locally — the read-replica shape, which serves
	// reads but never feeds a mempool. Submit may be nil when set.
	RedirectSubmit []string
	// ReadKV serves GET /v1/kv; nil (execution disabled) answers 501.
	ReadKV func(key []byte) (execution.KVRead, bool)
	// ProvenRead serves GET /v1/kv/{key}?proof=1: a Merkle proof plus quorum
	// certificate against the node's last certified checkpoint. nil answers
	// 501; ok=false (no certificate yet) answers 503.
	ProvenRead func(key []byte) (execution.ProvenKV, bool)
	// Checkpoint serves GET /v1/checkpoint: the newest quorum checkpoint
	// certificate this node holds. nil answers 501; ok=false 404.
	Checkpoint func() (*checkpoint.Certificate, bool)
	// SnapshotBlob serves GET /v1/snapshot: the raw wire encoding
	// (execution.EncodeSnapshot) of the newest CERTIFIED checkpoint, the blob
	// replicas bootstrap from. nil answers 501; ok=false 404.
	SnapshotBlob func() ([]byte, bool)
	// RootAt resolves the executor's chained root at a commit sequence for
	// stream events; nil leaves event roots empty.
	RootAt func(seq uint64) (types.Digest, bool)
	// Status supplies the node-level fields of /v1/status (engine round,
	// frontier, execution cursor); the gateway fills in commit and mempool
	// counters. Nil leaves those fields zero.
	Status func() StatusResponse
	// Trace serves GET /v1/trace/{txid}: the transaction's commit-path
	// waterfall from the node's lifecycle tracer. nil (tracing disabled)
	// answers 501; ok=false (unknown or evicted tx) 404.
	Trace func(txID uint64) (TraceResponse, bool)
	// Metrics, when non-nil, receives gateway counters
	// (hammerhead_rpc_requests_total, hammerhead_rpc_submit_latency_seconds,
	// hammerhead_mempool_lane_depth) and is mounted at /metrics.
	Metrics *metrics.Registry
	// HistoryDepth overrides the SSE resume window (0 =
	// DefaultHistoryDepth).
	HistoryDepth int
}

// Gateway is the embedded HTTP server. Create with New (binds the listener),
// then Start; Close is idempotent.
type Gateway struct {
	cfg      Config
	listener net.Listener
	server   *http.Server

	// Commit history for SSE resume: a circular buffer ordered by seq
	// (oldest at head). mu/cond guard it and wake streaming subscribers;
	// ObserveCommit is the only writer, and appends are O(1) — this runs on
	// the node's commit-delivery goroutine.
	mu      sync.Mutex
	cond    *sync.Cond
	ring    []CommitEvent // guarded by mu
	head    int           // guarded by mu
	lastSeq uint64        // guarded by mu
	commits uint64        // guarded by mu
	closed  bool          // guarded by mu

	txSeq       atomic.Uint64
	redirectSeq atomic.Uint64
	closeOnce   sync.Once

	reqsMetric    *metrics.Counter
	submitLatency *metrics.Histogram
	laneDepth     *metrics.Gauge
}

// New binds the gateway's listener (so ":0" callers can read Addr before
// serving) and assembles the routes. Call Start to begin serving.
func New(cfg Config) (*Gateway, error) {
	if cfg.Submit == nil && len(cfg.RedirectSubmit) == 0 {
		return nil, fmt.Errorf("rpc: Config.Submit (or RedirectSubmit) is required")
	}
	for i, t := range cfg.RedirectSubmit {
		if !strings.Contains(t, "://") {
			cfg.RedirectSubmit[i] = "http://" + t
		}
		cfg.RedirectSubmit[i] = strings.TrimRight(cfg.RedirectSubmit[i], "/")
	}
	if cfg.HistoryDepth <= 0 {
		cfg.HistoryDepth = DefaultHistoryDepth
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listening on %s: %w", cfg.Addr, err)
	}
	g := &Gateway{
		cfg:      cfg,
		listener: ln,
		ring:     make([]CommitEvent, 0, cfg.HistoryDepth),
	}
	g.cond = sync.NewCond(&g.mu)
	if cfg.Metrics != nil {
		g.reqsMetric = cfg.Metrics.Counter("hammerhead_rpc_requests_total")
		g.submitLatency = cfg.Metrics.Histogram("hammerhead_rpc_submit_latency_seconds",
			[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1})
		g.laneDepth = cfg.Metrics.Gauge("hammerhead_mempool_lane_depth")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tx", g.counted(g.handleSubmit))
	mux.HandleFunc("/v1/commits", g.counted(g.handleCommits))
	mux.HandleFunc("/v1/status", g.counted(g.handleStatus))
	mux.HandleFunc("/v1/checkpoint", g.counted(g.handleCheckpoint))
	mux.HandleFunc("/v1/snapshot", g.counted(g.handleSnapshot))
	mux.HandleFunc("/v1/trace/", g.counted(g.handleTrace))
	if cfg.Metrics != nil {
		mux.Handle("/metrics", cfg.Metrics)
	}
	// The KV route bypasses ServeMux: its path cleaning 301-redirects keys
	// containing "//" or dot segments to a DIFFERENT key (KV keys are
	// arbitrary byte strings), silently breaking read-your-writes. handleKV
	// parses the escaped path itself.
	kv := g.counted(g.handleKV)
	g.server = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.EscapedPath(), "/v1/kv/") {
			kv(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})}
	return g, nil
}

// Addr returns the bound listen address.
func (g *Gateway) Addr() string { return g.listener.Addr().String() }

// Start begins serving in a background goroutine.
func (g *Gateway) Start() {
	go func() { _ = g.server.Serve(g.listener) }()
}

// Close stops the server, terminating open streams. Idempotent.
func (g *Gateway) Close() error {
	var err error
	g.closeOnce.Do(func() {
		g.mu.Lock()
		g.closed = true
		g.mu.Unlock()
		g.cond.Broadcast()
		// Close (not Shutdown): open SSE streams would hold a graceful
		// shutdown forever.
		err = g.server.Close()
	})
	return err
}

// ObserveCommit records one ordered sub-DAG for the commit stream and status
// counters. Called from the node's commit-delivery goroutine — it appends to
// the ring and wakes subscribers, nothing slower. The event retains the full
// transaction payloads (in application order) plus the commit's content
// digest so ?full=1 subscribers — read replicas — can re-execute the stream;
// HistoryDepth bounds the retained payload memory.
func (g *Gateway) ObserveCommit(sub bullshark.CommittedSubDAG) {
	ev := CommitEvent{
		Seq:          sub.Index,
		Round:        uint64(sub.Anchor.Round),
		TxCount:      sub.TxCount(),
		CommitDigest: hex.EncodeToString(digestOf(&sub)),
	}
	for _, v := range sub.Vertices {
		if v.Batch == nil {
			continue
		}
		for i := range v.Batch.Transactions {
			ev.Payloads = append(ev.Payloads, v.Batch.Transactions[i].Payload)
			if len(ev.TxIDs) >= maxTxIDsPerEvent {
				continue
			}
			ev.TxIDs = append(ev.TxIDs, v.Batch.Transactions[i].ID)
		}
	}
	g.ObserveEvent(ev)
}

func digestOf(sub *bullshark.CommittedSubDAG) []byte {
	d := execution.CommitDigestOf(sub)
	return d[:]
}

// ObserveEvent records one already-built commit event. Replicas re-serving a
// stream they tail (and re-execute) feed their gateway here; validators go
// through ObserveCommit. Events must arrive in ascending Seq order.
func (g *Gateway) ObserveEvent(ev CommitEvent) {
	g.mu.Lock()
	if ev.Seq > g.lastSeq {
		if len(g.ring) < cap(g.ring) {
			g.ring = append(g.ring, ev)
		} else {
			// Full: overwrite the oldest slot and advance the head.
			g.ring[g.head] = ev
			g.head = (g.head + 1) % len(g.ring)
		}
		g.lastSeq = ev.Seq
	}
	g.commits++
	g.mu.Unlock()
	g.cond.Broadcast()
}

// ringAtLocked returns the i-th oldest retained event. Caller holds g.mu.
func (g *Gateway) ringAtLocked(i int) *CommitEvent {
	return &g.ring[(g.head+i)%len(g.ring)]
}

// counted wraps a handler with the request counter.
func (g *Gateway) counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if g.reqsMetric != nil {
			g.reqsMetric.Inc()
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// clientID resolves the submitter identity for lane selection: explicit
// request field, then the X-Client-ID header, then the remote host.
func clientID(req *SubmitRequest, r *http.Request) string {
	if req.Client != "" {
		return req.Client
	}
	if h := r.Header.Get("X-Client-ID"); h != "" {
		return h
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, SubmitError{Error: "POST only"})
		return
	}
	if g.cfg.Submit == nil {
		// Read replica: this node has no mempool. 307 preserves the POST body,
		// so a redirect-following client lands on a real validator unchanged.
		target := g.cfg.RedirectSubmit[int(g.redirectSeq.Add(1)-1)%len(g.cfg.RedirectSubmit)]
		w.Header().Set("Location", target+"/v1/tx")
		writeJSON(w, http.StatusTemporaryRedirect, SubmitError{Error: "read replica: submit to a validator"})
		return
	}
	start := time.Now()
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, SubmitError{Error: "decoding body: " + err.Error()})
		return
	}
	client := clientID(&req, r)
	resp := SubmitResponse{}
	if g.cfg.Lane != nil {
		resp.Lane = g.cfg.Lane(client)
	}
	now := time.Now().UnixNano()
	for i := range req.Txs {
		tx := types.Transaction{
			ID:              req.Txs[i].ID,
			SubmitTimeNanos: now,
			Payload:         req.Txs[i].Payload,
		}
		if tx.ID == 0 {
			tx.ID = g.txSeq.Add(1)
		}
		if err := g.cfg.Submit(client, tx); err != nil {
			resp.Rejected++
			resp.Errors = append(resp.Errors, SubmitError{Index: i, Error: err.Error()})
			continue
		}
		resp.Accepted++
	}
	if g.submitLatency != nil {
		g.submitLatency.Observe(time.Since(start).Seconds())
	}
	if g.laneDepth != nil && g.cfg.LaneStats != nil {
		depth := 0
		for _, ls := range g.cfg.LaneStats() {
			if ls.Depth > depth {
				depth = ls.Depth
			}
		}
		g.laneDepth.Set(int64(depth))
	}
	status := http.StatusOK
	if resp.Accepted == 0 && resp.Rejected > 0 {
		// Every transaction bounced off the lane cap: surface backpressure as
		// 429 so clients (and proxies) back off.
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, resp)
}

func (g *Gateway) handleKV(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, SubmitError{Error: "GET only"})
		return
	}
	raw := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/kv/")
	key, err := url.PathUnescape(raw)
	if err != nil || key == "" {
		writeJSON(w, http.StatusBadRequest, SubmitError{Error: "bad key"})
		return
	}
	if r.URL.Query().Get("proof") == "1" {
		g.handleKVProof(w, []byte(key))
		return
	}
	if g.cfg.ReadKV == nil {
		writeJSON(w, http.StatusNotImplemented, SubmitError{Error: "execution subsystem disabled on this node"})
		return
	}
	read, ok := g.cfg.ReadKV([]byte(key))
	if !ok {
		writeJSON(w, http.StatusNotImplemented, SubmitError{Error: "state machine has no KV read surface"})
		return
	}
	resp := KVResponse{
		Key:          []byte(key),
		Value:        read.Value,
		Found:        read.Found,
		Version:      read.Version,
		AppliedSeq:   read.AppliedSeq,
		AppliedRound: uint64(read.Round),
		StateRoot:    hex.EncodeToString(read.StateRoot[:]),
	}
	status := http.StatusOK
	if !read.Found {
		status = http.StatusNotFound
	}
	writeJSON(w, status, resp)
}

// handleKVProof answers GET /v1/kv/{key}?proof=1: the Merkle proof for the
// key against the last quorum-certified checkpoint, plus the certificate. The
// convenience Value/Found fields are filled from the proof itself, but a
// trustless client re-derives them by verifying the proof client-side.
func (g *Gateway) handleKVProof(w http.ResponseWriter, key []byte) {
	if g.cfg.ProvenRead == nil {
		writeJSON(w, http.StatusNotImplemented, SubmitError{Error: "proof-carrying reads unavailable on this node"})
		return
	}
	pr, ok := g.cfg.ProvenRead(key)
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, SubmitError{Error: "no certified checkpoint yet"})
		return
	}
	_, entry, err := pr.Proof.Verify(key)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, SubmitError{Error: "malformed proof: " + err.Error()})
		return
	}
	leaf, steps := rpcapi.ProofToWire(pr.Proof)
	resp := KVProofResponse{
		Key:          key,
		Value:        entry.Value,
		Found:        entry.Found,
		Leaf:         leaf,
		Steps:        steps,
		StateVersion: pr.Version,
		StateOpaque:  pr.Opaque,
		Cert:         rpcapi.CertToWire(pr.Cert),
	}
	status := http.StatusOK
	if !entry.Found {
		status = http.StatusNotFound
	}
	writeJSON(w, status, resp)
}

// handleCheckpoint answers GET /v1/checkpoint: the newest quorum checkpoint
// certificate, the trust anchor replicas cross-check their re-executed state
// against.
func (g *Gateway) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, SubmitError{Error: "GET only"})
		return
	}
	if g.cfg.Checkpoint == nil {
		writeJSON(w, http.StatusNotImplemented, SubmitError{Error: "checkpoint certification disabled on this node"})
		return
	}
	cert, ok := g.cfg.Checkpoint()
	if !ok {
		writeJSON(w, http.StatusNotFound, SubmitError{Error: "no certified checkpoint yet"})
		return
	}
	writeJSON(w, http.StatusOK, rpcapi.CertToWire(cert))
}

// handleSnapshot answers GET /v1/snapshot: the raw certified snapshot blob
// (execution snapshot wire format) replicas bootstrap from. Binary, not JSON
// — the blob already carries its own framing, checksum and certificate.
func (g *Gateway) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, SubmitError{Error: "GET only"})
		return
	}
	if g.cfg.SnapshotBlob == nil {
		writeJSON(w, http.StatusNotImplemented, SubmitError{Error: "snapshot serving disabled on this node"})
		return
	}
	blob, ok := g.cfg.SnapshotBlob()
	if !ok {
		writeJSON(w, http.StatusNotFound, SubmitError{Error: "no certified snapshot yet"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// handleTrace answers GET /v1/trace/{txid}: the per-stage commit-path
// waterfall the node's lifecycle tracer recorded for one transaction.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, SubmitError{Error: "GET only"})
		return
	}
	if g.cfg.Trace == nil {
		writeJSON(w, http.StatusNotImplemented, SubmitError{Error: "tracing disabled on this node"})
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	txID, err := strconv.ParseUint(raw, 10, 64)
	if err != nil || txID == 0 {
		writeJSON(w, http.StatusBadRequest, SubmitError{Error: "bad tx id: " + raw})
		return
	}
	resp, ok := g.cfg.Trace(txID)
	if !ok {
		writeJSON(w, http.StatusNotFound, SubmitError{Error: "no trace retained for this tx"})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, SubmitError{Error: "GET only"})
		return
	}
	var resp StatusResponse
	if g.cfg.Status != nil {
		resp = g.cfg.Status()
	}
	resp.Validator = uint32(g.cfg.Validator)
	if g.cfg.LaneStats != nil {
		for _, ls := range g.cfg.LaneStats() {
			resp.MempoolPending += ls.Depth
			resp.MempoolCapacity += ls.Cap
			resp.Lanes = append(resp.Lanes, LaneStatus{
				Lane:      ls.Lane,
				Depth:     ls.Depth,
				Cap:       ls.Cap,
				Weight:    ls.Weight,
				Submitted: ls.Stats.Submitted,
				Rejected:  ls.Stats.Rejected,
				Drained:   ls.Stats.Drained,
			})
		}
	}
	g.mu.Lock()
	resp.Commits = g.commits
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleCommits streams commits as Server-Sent Events. ?from=SEQ (or the
// Last-Event-ID header on reconnect) resumes after the given sequence; absent,
// the stream starts at the live tail. A resume point older than the retained
// ring yields a gap event, then streaming continues from the oldest retained
// commit.
func (g *Gateway) handleCommits(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, SubmitError{Error: "GET only"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, SubmitError{Error: "streaming unsupported"})
		return
	}
	from, fromSet, err := resumePoint(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, SubmitError{Error: err.Error()})
		return
	}
	// ?full=1 keeps the per-commit transaction payloads on the events — the
	// re-execution feed replicas tail. Plain subscribers get them stripped.
	full := r.URL.Query().Get("full") == "1"
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Wake the cond wait when the client goes away. The broadcast must
	// serialize with the handler's check-then-wait under g.mu: a bare
	// broadcast could land in the window between the handler evaluating
	// ctx.Err() and entering Wait, stranding the goroutine (and the dead
	// connection) until the next commit.
	ctx := r.Context()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			g.mu.Lock()
			g.cond.Broadcast()
			g.mu.Unlock()
		case <-watchDone:
		}
	}()

	g.mu.Lock()
	next := g.lastSeq + 1 // live tail by default
	if fromSet {
		next = from + 1
	}
	for {
		for !g.closed && ctx.Err() == nil && g.lastSeq < next {
			g.cond.Wait()
		}
		if g.closed || ctx.Err() != nil {
			g.mu.Unlock()
			return
		}
		// Copy the deliverable tail out (the ring is seq-ordered, so the
		// start position is a binary search), then emit without the lock.
		var gap *GapEvent
		n := len(g.ring)
		if n > 0 && g.ringAtLocked(0).Seq > next {
			gap = &GapEvent{Oldest: g.ringAtLocked(0).Seq}
			next = g.ringAtLocked(0).Seq
		}
		start := sort.Search(n, func(i int) bool { return g.ringAtLocked(i).Seq >= next })
		batch := make([]CommitEvent, 0, n-start)
		for i := start; i < n; i++ {
			batch = append(batch, *g.ringAtLocked(i))
		}
		if len(batch) > 0 {
			next = batch[len(batch)-1].Seq + 1
		}
		g.mu.Unlock()

		if gap != nil {
			// The gap frame's id is Oldest-1: a client reconnecting with
			// Last-Event-ID after seeing only the gap must still receive the
			// commit at Oldest (id semantics are "last seq caught up to").
			if err := writeEvent(w, "gap", gap.Oldest-1, gap); err != nil {
				return
			}
		}
		for i := range batch {
			if !full {
				batch[i].Payloads = nil
			}
			if g.cfg.RootAt != nil && batch[i].StateRoot == "" {
				if root, ok := g.cfg.RootAt(batch[i].Seq); ok {
					batch[i].StateRoot = hex.EncodeToString(root[:])
				}
			}
			if err := writeEvent(w, "commit", batch[i].Seq, batch[i]); err != nil {
				return
			}
		}
		flusher.Flush()
		g.mu.Lock()
	}
}

// resumePoint parses the stream resume sequence from ?from= or Last-Event-ID.
func resumePoint(r *http.Request) (seq uint64, set bool, err error) {
	raw := r.URL.Query().Get("from")
	if raw == "" {
		raw = r.Header.Get("Last-Event-ID")
	}
	if raw == "" {
		return 0, false, nil
	}
	seq, err = strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false, errors.New("bad resume sequence: " + raw)
	}
	return seq, true, nil
}

// writeEvent emits one SSE frame: id, event name, JSON data.
func writeEvent(w http.ResponseWriter, name string, id uint64, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, name, data)
	return err
}
