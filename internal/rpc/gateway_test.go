package rpc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"hammerhead/internal/bullshark"
	"hammerhead/internal/dag"
	"hammerhead/internal/execution"
	"hammerhead/internal/mempool"
	"hammerhead/internal/metrics"
	"hammerhead/internal/types"
)

// newTestGateway boots a gateway over a 2-lane fair pool and a live executor,
// serving on an ephemeral port.
func newTestGateway(t *testing.T, mutate func(*Config)) (*Gateway, *mempool.FairPool, *execution.Executor, string) {
	t.Helper()
	pool := mempool.NewFair(mempool.FairConfig{MaxSize: 64, Lanes: 2, Shards: 1})
	exec := execution.NewExecutor(execution.NewKVState(), execution.Config{})
	reg := metrics.NewRegistry()
	cfg := Config{
		Addr:      "127.0.0.1:0",
		Validator: 3,
		Submit:    pool.SubmitClient,
		Lane:      pool.LaneFor,
		LaneStats: pool.LaneStats,
		ReadKV:    exec.ReadKV,
		RootAt:    exec.RootAt,
		Status: func() StatusResponse {
			return StatusResponse{Round: 7, HighestRound: 9, LastOrdered: 6, AppliedSeq: exec.AppliedSeq()}
		},
		Metrics: reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(func() { _ = g.Close() })
	return g, pool, exec, "http://" + g.Addr()
}

// applyCommit feeds one synthetic commit through executor and gateway, the
// way the node's commit loop does.
func applyCommit(g *Gateway, exec *execution.Executor, seq uint64, round types.Round, payloads ...[]byte) {
	batch := &types.Batch{}
	for i, p := range payloads {
		batch.Transactions = append(batch.Transactions, types.Transaction{ID: seq*100 + uint64(i), Payload: p})
	}
	v := dag.NewVertex(round-1, 1, nil, batch, 0)
	anchor := dag.NewVertex(round, 0, nil, nil, 0)
	sub := bullshark.CommittedSubDAG{Index: seq, Anchor: anchor, Vertices: []*dag.Vertex{v, anchor}}
	exec.ApplyCommit(sub)
	g.ObserveCommit(sub)
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestGatewaySubmitBatch(t *testing.T) {
	_, pool, _, base := newTestGateway(t, nil)
	req := SubmitRequest{Client: "alice", Txs: []SubmitTx{
		{ID: 1, Payload: []byte("a")},
		{Payload: []byte("b")}, // ID assigned by the gateway
	}}
	resp, body := postJSON(t, base+"/v1/tx", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out SubmitResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 2 || out.Rejected != 0 {
		t.Fatalf("accepted/rejected = %d/%d, want 2/0", out.Accepted, out.Rejected)
	}
	if out.Lane != pool.LaneFor("alice") {
		t.Fatalf("lane = %d, want %d", out.Lane, pool.LaneFor("alice"))
	}
	if got := pool.Pending(); got != 2 {
		t.Fatalf("pool pending = %d, want 2", got)
	}
	// The drained transactions carry submit timestamps and the assigned ID.
	b := pool.NextBatch(0, 10)
	if b == nil || len(b.Transactions) != 2 {
		t.Fatalf("drained %v", b)
	}
	for _, tx := range b.Transactions {
		if tx.ID == 0 || tx.SubmitTimeNanos == 0 {
			t.Fatalf("tx missing ID or submit time: %+v", tx)
		}
	}
}

func TestGatewaySubmitBackpressure429(t *testing.T) {
	_, pool, _, base := newTestGateway(t, nil)
	// Saturate alice's lane (cap = 32 of the 64-wide pool).
	var txs []SubmitTx
	for i := 0; i < 64; i++ {
		txs = append(txs, SubmitTx{Payload: []byte("x")})
	}
	resp, body := postJSON(t, base+"/v1/tx", SubmitRequest{Client: "alice", Txs: txs})
	var out SubmitResponse
	_ = json.Unmarshal(body, &out)
	if resp.StatusCode != http.StatusOK || out.Rejected == 0 {
		t.Fatalf("mixed batch: status %d rejected %d, want 200 with rejections", resp.StatusCode, out.Rejected)
	}
	// A fully rejected batch surfaces as 429 with per-tx errors.
	resp, body = postJSON(t, base+"/v1/tx", SubmitRequest{Client: "alice", Txs: txs[:2]})
	_ = json.Unmarshal(body, &out)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated lane: status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if len(out.Errors) != 2 || !strings.Contains(out.Errors[0].Error, "full") {
		t.Fatalf("errors = %+v", out.Errors)
	}
	// Another client's lane is unaffected — admission fairness at the API.
	other := "bob"
	if pool.LaneFor(other) == pool.LaneFor("alice") {
		for _, c := range []string{"carol", "dave", "erin"} {
			if pool.LaneFor(c) != pool.LaneFor("alice") {
				other = c
				break
			}
		}
	}
	resp, _ = postJSON(t, base+"/v1/tx", SubmitRequest{Client: other, Txs: txs[:2]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("light client rejected while another lane is saturated: %d", resp.StatusCode)
	}
}

func TestGatewayKVReadWithCursor(t *testing.T) {
	g, _, exec, base := newTestGateway(t, nil)
	applyCommit(g, exec, 1, 2, execution.PutOp([]byte("acct-1"), []byte("100")))
	applyCommit(g, exec, 2, 4, execution.PutOp([]byte("acct-1"), []byte("250")))

	resp, err := http.Get(base + "/v1/kv/acct-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out KVResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if string(out.Value) != "250" || out.Version != 2 || !out.Found {
		t.Fatalf("kv read = %+v", out)
	}
	if out.AppliedSeq != 2 || out.AppliedRound != 4 || out.StateRoot == "" {
		t.Fatalf("cursor = %+v, want seq 2 round 4 with a root", out)
	}

	resp2, err := http.Get(base + "/v1/kv/missing-key")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("missing key status = %d, want 404", resp2.StatusCode)
	}
}

func TestGatewayStatus(t *testing.T) {
	g, _, _, base := newTestGateway(t, nil)
	applyCommit(g, nil2(), 1, 2)

	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Validator != 3 || out.Round != 7 || out.HighestRound != 9 || out.LastOrdered != 6 {
		t.Fatalf("status = %+v", out)
	}
	if out.Commits != 1 {
		t.Fatalf("commits = %d, want 1", out.Commits)
	}
	if len(out.Lanes) != 2 || out.MempoolCapacity != 64 {
		t.Fatalf("lanes = %+v capacity = %d", out.Lanes, out.MempoolCapacity)
	}
}

// nil2 gives applyCommit an executor sink for status-only tests.
func nil2() *execution.Executor {
	return execution.NewExecutor(execution.NewKVState(), execution.Config{})
}

// sseClient reads commit events off a /v1/commits stream.
type sseClient struct {
	resp   *http.Response
	reader *bufio.Reader
}

func openStream(t *testing.T, base string, from string) *sseClient {
	t.Helper()
	url := base + "/v1/commits"
	if from != "" {
		url += "?from=" + from
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return &sseClient{resp: resp, reader: bufio.NewReader(resp.Body)}
}

// next reads one event (name, decoded commit payload). Fails the test on
// timeout via the response deadline-less read — callers keep events flowing.
func (c *sseClient) next(t *testing.T) (string, []byte) {
	t.Helper()
	var name string
	var data []byte
	for {
		line, err := c.reader.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && data != nil:
			return name, data
		}
	}
}

func TestGatewayCommitStreamResume(t *testing.T) {
	g, _, exec, base := newTestGateway(t, nil)
	for seq := uint64(1); seq <= 5; seq++ {
		applyCommit(g, exec, seq, types.Round(seq*2), execution.PutOp([]byte{byte(seq)}, []byte("v")))
	}

	// Resume from mid-stream: from=2 must deliver 3, 4, 5 in order.
	c := openStream(t, base, "2")
	for want := uint64(3); want <= 5; want++ {
		name, data := c.next(t)
		if name != "commit" {
			t.Fatalf("event = %s, want commit", name)
		}
		var ev CommitEvent
		if err := json.Unmarshal(data, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != want {
			t.Fatalf("resumed event seq = %d, want %d", ev.Seq, want)
		}
		if want == 5 && (len(ev.TxIDs) != 1 || ev.StateRoot == "") {
			t.Fatalf("event missing tx ids or root: %+v", ev)
		}
	}

	// Live delivery continues on the same stream. (Raw read in the goroutine:
	// t.Fatal must stay on the test goroutine.)
	done := make(chan CommitEvent, 1)
	go func() {
		for {
			line, err := c.reader.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "data: ") {
				var ev CommitEvent
				if json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimRight(line, "\n"), "data: ")), &ev) == nil {
					done <- ev
					return
				}
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	applyCommit(g, exec, 6, 12)
	select {
	case ev := <-done:
		if ev.Seq != 6 {
			t.Fatalf("live event seq = %d, want 6", ev.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live commit never reached the stream")
	}
}

func TestGatewayCommitStreamGap(t *testing.T) {
	g, _, exec, base := newTestGateway(t, func(c *Config) { c.HistoryDepth = 4 })
	for seq := uint64(1); seq <= 10; seq++ {
		applyCommit(g, exec, seq, types.Round(seq*2))
	}
	// Ring holds 7..10; resuming from 2 must announce the gap, then continue
	// from the oldest retained commit.
	c := openStream(t, base, "2")
	name, data := c.next(t)
	if name != "gap" {
		t.Fatalf("first event = %s, want gap", name)
	}
	var gap GapEvent
	if err := json.Unmarshal(data, &gap); err != nil {
		t.Fatal(err)
	}
	if gap.Oldest != 7 {
		t.Fatalf("gap oldest = %d, want 7", gap.Oldest)
	}
	name, data = c.next(t)
	var ev CommitEvent
	_ = json.Unmarshal(data, &ev)
	if name != "commit" || ev.Seq != 7 {
		t.Fatalf("post-gap event = %s seq %d, want commit 7", name, ev.Seq)
	}
}

func TestGatewayMetricsExposition(t *testing.T) {
	_, _, _, base := newTestGateway(t, nil)
	postJSON(t, base+"/v1/tx", SubmitRequest{Client: "m", Txs: []SubmitTx{{Payload: []byte("p")}}})

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, metric := range []string{
		"hammerhead_rpc_requests_total",
		"hammerhead_rpc_submit_latency_seconds",
		"hammerhead_mempool_lane_depth",
	} {
		if !strings.Contains(text, metric) {
			t.Fatalf("metrics exposition missing %s:\n%s", metric, text)
		}
	}
	if !strings.Contains(text, "hammerhead_rpc_requests_total 1") {
		t.Fatalf("request counter not incremented:\n%s", text)
	}
}

func TestGatewayRequiresSubmit(t *testing.T) {
	if _, err := New(Config{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("New without Submit must fail")
	}
}
