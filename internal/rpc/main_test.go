package rpc

import (
	"testing"

	"hammerhead/internal/testutil/leakcheck"
)

// TestMain fails the package if tests leave goroutines running — gateway
// Close must unblock every SSE stream and its watchdog goroutine.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
