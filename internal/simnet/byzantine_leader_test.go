package simnet

import (
	"testing"
	"time"

	"hammerhead/internal/core"
	"hammerhead/internal/types"
)

// TestHammerHeadScoresOutFaultyLeaders is the paper's §1 incident in
// miniature: a committee of 10 with one crash-faulty validator, one
// selectively-withholding Byzantine validator (its headers never reach half
// the committee, so its vertices never gather a vote quorum — it looks alive
// but its proposals never land), and one badly lagging validator. The
// reputation scheduler must strip all three of their leader slots; the
// round-robin baseline would keep re-electing them and eating the leader
// timeout every cycle.
func TestHammerHeadScoresOutFaultyLeaders(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSimEngineConfig()
	cfg.MinRoundDelay = 30 * time.Millisecond
	cfg.LeaderTimeout = 300 * time.Millisecond
	cfg.ResyncInterval = 150 * time.Millisecond
	cluster, err := NewCluster(ClusterConfig{
		Committee:    committee,
		Engine:       cfg,
		Latency:      Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler: hammerheadFactory(6),
		Seed:         23,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		crashed    = types.ValidatorID(9)
		withholder = types.ValidatorID(8)
		laggard    = types.ValidatorID(7)
	)
	cluster.CrashAt(crashed, 2*time.Second)
	// Suppress the withholder's headers toward 5 of its 9 peers: at most 5
	// votes can ever gather (its own plus the 4 peers it still serves), short
	// of the 7-stake quorum.
	cluster.Withhold(withholder, []types.ValidatorID{0, 1, 2, 3, 4}, 2*time.Second)
	cluster.SlowDown(laggard, 8, 2*time.Second, 40*time.Second)

	cluster.Start()
	cluster.Sim.RunFor(40 * time.Second)

	if got := cluster.Engine(0).Committer().LastOrderedRound(); got < 100 {
		t.Fatalf("committee ordered only %d rounds with 3 faulty members", got)
	}
	m, ok := cluster.Engine(0).Scheduler().(*core.Manager)
	if !ok {
		t.Fatal("expected a core.Manager scheduler")
	}
	if m.SwitchCount() < 3 {
		t.Fatalf("only %d schedule switches; scoring never reacted", m.SwitchCount())
	}

	// Every faulty validator must have been scored out of at least one
	// schedule, and the steady-state exclusion set must pin the two
	// permanently faulty ones (the laggard's standing can recover when its
	// slow window ends, so it is only required in the historical record).
	everBad := map[types.ValidatorID]bool{}
	for _, d := range m.Decisions() {
		for _, id := range d.Bad {
			everBad[id] = true
		}
	}
	for _, id := range []types.ValidatorID{crashed, withholder, laggard} {
		if !everBad[id] {
			t.Errorf("faulty validator %s was never scored out (bad sets: %v)", id, everBad)
		}
	}
	final := map[types.ValidatorID]bool{}
	for _, id := range m.Excluded() {
		final[id] = true
	}
	for _, id := range []types.ValidatorID{crashed, withholder} {
		if !final[id] {
			t.Errorf("validator %s regained leader slots in the final schedule (excluded: %v)", id, m.Excluded())
		}
	}

	// All live validators agree on the exclusion — it is a pure function of
	// the committed prefix, not a local opinion.
	for i := 0; i < 7; i++ {
		other := cluster.Engine(types.ValidatorID(i)).Scheduler().(*core.Manager)
		if other.SwitchCount() == 0 {
			t.Fatalf("v%d never switched schedules", i)
		}
	}
}
