package simnet_test

import (
	"testing"
	"time"

	"hammerhead/internal/simnet"
	"hammerhead/internal/types"
)

// TestClusterDropsInvalidSignaturesPreservesLiveness is the Byzantine-signer
// fault scenario: one validator emits garbage signatures on everything it
// sends. The pre-verify stage must absorb the entire attack — nothing
// invalid reaches any engine — while the honest quorum keeps committing
// with ordinary latency.
func TestClusterDropsInvalidSignaturesPreservesLiveness(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	engCfg := fastEngineConfig()
	engCfg.VerifySignatures = true // Ed25519 keys + pre-verify stage
	engCfg.VerifyWorkers = 4
	engCfg.MinRoundDelay = 100 * time.Millisecond
	rec := newCommitRecorder(0)
	cluster := newClusterWithConfig(t, simnet.ClusterConfig{
		Committee:    committee,
		Engine:       engCfg,
		Latency:      simnet.Uniform{Base: 25 * time.Millisecond, Jitter: 0.1},
		NewScheduler: roundRobinFactory(1),
		OnCommit:     rec.hook,
		Seed:         11,
	})
	cluster.CorruptSignatures(3, 0)
	submitLoad(cluster, 0, 50*time.Millisecond, 12*time.Second)
	cluster.Start()
	cluster.Sim.RunFor(15 * time.Second)

	if cluster.PreVerifyDropped() == 0 {
		t.Fatal("pre-verify stage never dropped the Byzantine signer's traffic")
	}
	// The attack is absorbed before the state machine: honest engines saw
	// only valid messages, so their invalid-message counters stay zero.
	for i := 0; i < 3; i++ {
		if got := cluster.Engine(types.ValidatorID(i)).Stats().InvalidMessages; got != 0 {
			t.Fatalf("validator v%d's engine saw %d invalid messages; pre-verify leaked", i, got)
		}
	}
	// Liveness: the three honest validators form quorums without v3.
	for i := 0; i < 3; i++ {
		if len(rec.anchors[types.ValidatorID(i)]) < 5 {
			t.Fatalf("validator v%d committed only %d sub-DAGs under the signing fault",
				i, len(rec.anchors[types.ValidatorID(i)]))
		}
	}
	// Safety: prefix-consistent commit sequences.
	for i := 1; i < 3; i++ {
		if !prefixConsistent(rec.anchors[0], rec.anchors[types.ValidatorID(i)]) {
			t.Fatalf("commit sequences diverge under the signing fault (v%d)", i)
		}
	}
	// The Byzantine signer can never certify a vertex: no honest validator
	// votes for headers whose signatures fail pre-verification.
	dag0 := cluster.Engine(0).DAG()
	for r := types.Round(1); r <= dag0.HighestRound(); r++ {
		if _, ok := dag0.Get(r, 3); ok {
			t.Fatalf("v3 got a vertex certified at round %d despite forged signatures", r)
		}
	}
	// Commit latency is preserved: client transactions at the honest
	// observer still finalize with the latency of a healthy 25ms network.
	if len(rec.txLatency) == 0 {
		t.Fatal("no transactions reached finality under the signing fault")
	}
	var sum time.Duration
	for _, l := range rec.txLatency {
		sum += l
	}
	if avg := sum / time.Duration(len(rec.txLatency)); avg <= 0 || avg > 3*time.Second {
		t.Fatalf("average commit latency %v degraded under the signing fault", avg)
	}
}

// TestClusterAuthenticatedFaultlessRun sanity-checks the authenticated
// pipeline with no faults: pre-verify passes everything, engines see no
// invalid messages, and nothing is dropped.
func TestClusterAuthenticatedFaultlessRun(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	engCfg := fastEngineConfig()
	engCfg.VerifySignatures = true
	engCfg.VerifyWorkers = 2
	engCfg.MinRoundDelay = 100 * time.Millisecond
	rec := newCommitRecorder(0)
	cluster := newClusterWithConfig(t, simnet.ClusterConfig{
		Committee:    committee,
		Engine:       engCfg,
		Latency:      simnet.Uniform{Base: 25 * time.Millisecond, Jitter: 0.1},
		NewScheduler: roundRobinFactory(1),
		OnCommit:     rec.hook,
		Seed:         19,
	})
	cluster.Start()
	cluster.Sim.RunFor(8 * time.Second)

	if got := cluster.PreVerifyDropped(); got != 0 {
		t.Fatalf("pre-verify dropped %d messages in a faultless run", got)
	}
	for i := 0; i < 4; i++ {
		if got := cluster.Engine(types.ValidatorID(i)).Stats().InvalidMessages; got != 0 {
			t.Fatalf("validator v%d saw %d invalid messages in a faultless run", i, got)
		}
		if len(rec.anchors[types.ValidatorID(i)]) < 5 {
			t.Fatalf("validator v%d committed only %d sub-DAGs", i, len(rec.anchors[types.ValidatorID(i)]))
		}
	}
}
