package simnet

import (
	"testing"
	"time"

	"hammerhead/internal/types"
)

// TestWithholdCertsDegradesToResync pins the certificate-withholding fault:
// when every peer suppresses its DAG certificate broadcasts toward validator
// 0, the victim's DAG can only learn certified vertices through the
// request/response resync path (a different message kind, deliberately not
// suppressed). The committee keeps ordering, and the victim — noisier but
// alive — limps along on resync instead of losing liveness. Certificate
// withholding alone must degrade latency, not safety or liveness.
func TestWithholdCertsDegradesToResync(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	const victim = types.ValidatorID(0)
	run := func(withhold bool) (*Cluster, uint64) {
		cluster, err := NewCluster(ClusterConfig{
			Committee:    committee,
			Engine:       fastSimEngineConfig(),
			Latency:      Uniform{Base: 10 * time.Millisecond, Jitter: 0.1},
			NewScheduler: roundRobinFactory,
			Seed:         7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if withhold {
			for _, id := range []types.ValidatorID{1, 2, 3} {
				cluster.WithholdCerts(id, []types.ValidatorID{victim}, time.Second)
			}
		}
		cluster.Start()
		cluster.Sim.RunFor(20 * time.Second)
		return cluster, cluster.Engine(victim).Stats().SyncRequests
	}

	healthy, healthySyncs := run(false)
	eclipsed, eclipsedSyncs := run(true)

	// The committee around the victim keeps certifying and ordering.
	counts := countBySource(eclipsed, 1)
	for _, id := range []types.ValidatorID{1, 2, 3} {
		if counts[id] < 10 {
			t.Fatalf("validator %s certified only %d vertices under cert withholding (counts=%v)", id, counts[id], counts)
		}
	}
	if got := eclipsed.Engine(1).Committer().LastOrderedRound(); got < 10 {
		t.Fatalf("committee ordered only %d rounds under cert withholding", got)
	}
	// The victim stays live: resync replaces the withheld broadcasts.
	victimOrdered := eclipsed.Engine(victim).Committer().LastOrderedRound()
	healthyOrdered := healthy.Engine(victim).Committer().LastOrderedRound()
	if victimOrdered < healthyOrdered/4 {
		t.Fatalf("victim ordered %d rounds vs %d healthy — cert withholding killed liveness instead of degrading it",
			victimOrdered, healthyOrdered)
	}
	// And it leaned on resync to do so — the fault demonstrably bit.
	if eclipsedSyncs <= healthySyncs {
		t.Fatalf("victim sync requests %d (eclipsed) <= %d (healthy): the withholding never engaged",
			eclipsedSyncs, healthySyncs)
	}
}
