package simnet

import (
	"fmt"
	"time"

	"hammerhead/internal/bullshark"
	"hammerhead/internal/crypto"
	"hammerhead/internal/dag"
	"hammerhead/internal/engine"
	"hammerhead/internal/execution"
	"hammerhead/internal/leader"
	"hammerhead/internal/mempool"
	"hammerhead/internal/types"
)

// SchedulerFactory builds one validator's leader scheduler over its DAG.
// Factories return leader.RoundRobin for the Bullshark baseline or a
// core.Manager for HammerHead.
type SchedulerFactory func(committee *types.Committee, d *dag.DAG) (leader.Scheduler, error)

// CommitHook observes every commit on every validator, with the virtual
// time it happened. The experiment harness hangs latency accounting here.
type CommitHook func(node types.ValidatorID, sub bullshark.CommittedSubDAG, nowNanos int64)

// ClusterConfig assembles a simulated deployment.
type ClusterConfig struct {
	// Committee of the deployment. Required.
	Committee *types.Committee
	// Engine is the per-validator protocol configuration.
	Engine engine.Config
	// Latency is the network model. Required.
	Latency LatencyModel
	// NewScheduler builds each validator's scheduler. Required.
	NewScheduler SchedulerFactory
	// MempoolSize bounds each validator's pool (default 1<<20).
	MempoolSize int
	// MempoolShards is each pool's shard count, rounded up to a power of
	// two (0 sizes it to the machine).
	MempoolShards int
	// OnCommit observes commits (may be nil).
	OnCommit CommitHook
	// OnInsert observes every certificate a validator accepts into its DAG,
	// in insertion order — the trace recorder behind the pipeline
	// determinism test and the standalone executor replay bench.
	OnInsert func(node types.ValidatorID, cert *engine.Certificate)
	// Execution attaches a deterministic executor (execution.KVState behind
	// an in-memory snapshot store) to every validator's commit sink, applied
	// synchronously in virtual time, and wires snapshot state-sync
	// serve/install through the engines. Checkpoints carry the scheduler's
	// state, so state-sync works for round-robin and HammerHead alike.
	Execution bool
	// CheckpointInterval is the number of commits between checkpoints
	// (0 = execution default). Ignored without Execution.
	CheckpointInterval uint64
	// Seed drives all simulation randomness.
	Seed int64
	// DropRate silently discards this fraction of messages (0..1),
	// exercising the engine's retransmission and causal-sync machinery.
	// Reliable pairwise channels are part of the model after GST, so the
	// paper's experiments run with 0; fault-injection tests raise it.
	DropRate float64
}

// Cluster is a full simulated deployment: engines, mempools, network and
// fault injection, all in virtual time.
type Cluster struct {
	Sim       *Simulator
	Committee *types.Committee

	engines []*engine.Engine
	pools   []*mempool.Pool
	// execs holds each validator's executor when ClusterConfig.Execution is
	// set (nil entries otherwise). Applied synchronously inside the commit
	// sink, so executor state always reflects a definite virtual instant.
	execs []*execution.Executor
	// keys holds each validator's signing keys; fault injection that forges
	// protocol artifacts a real Byzantine validator could produce (e.g.
	// quorum-voted certificates over unchecked header fields) signs with
	// them. pubKeys is the committee's verification set.
	keys    []crypto.KeyPair
	pubKeys []crypto.PublicKey
	// prevers holds each validator's pre-verify stage when signature
	// verification is enabled (nil otherwise). The simulator runs Check
	// synchronously at delivery — same code as the node's async stage.
	prevers []*engine.PreVerifier

	crashedAt []int64 // -1 = never
	slowFrom  []int64
	slowUntil []int64
	slowMul   []float64
	badSigAt  []int64 // virtual time a validator starts corrupting; -1 = never
	// withholdAt / withholdFrom model selective withholding: from the given
	// virtual time, the validator suppresses its OWN header broadcasts toward
	// the peer set — enough peers and it never gathers a vote quorum, so its
	// vertices never certify while it otherwise looks alive.
	withholdAt   []int64
	withholdFrom []map[types.ValidatorID]bool
	// voteWithholdAt / voteWithholdFrom model the vote-withholding variant:
	// from the given virtual time, the validator silently refuses to vote for
	// headers ORIGINATING from the peer set. Enough withholders and the
	// targeted proposer can no longer gather a quorum — its vertices never
	// certify even though its headers reach everyone. Unlike header
	// withholding, the damage is attributed to the victim (its proposals
	// stall), which is exactly the griefing pattern reputation scoring has to
	// pin on the right validator.
	voteWithholdAt   []int64
	voteWithholdFrom []map[types.ValidatorID]bool
	// certWithholdAt / certWithholdFrom complete the withholding family: from
	// the given virtual time, the validator suppresses its DAG certificate
	// broadcasts (engine.KindCertificate) toward the peer set. The targets
	// still see headers and votes, so the withholder looks alive — but their
	// DAGs starve of the certified vertices needed to advance rounds and
	// anchor commits, leaning on certificate resync to limp along.
	certWithholdAt   []int64
	certWithholdFrom []map[types.ValidatorID]bool

	// incarnation guards against cross-incarnation delivery: a SIGKILL
	// restart (KillRestart) bumps a validator's incarnation at kill AND at
	// restart, so messages and timers belonging to the dead process — or sent
	// while it was down — are discarded at their scheduled instant instead of
	// leaking into the rebuilt engine. Graceful Recover keeps the incarnation
	// (its model intentionally preserves pre-crash in-memory state).
	incarnation []uint64
	// replaying marks a validator whose rebuilt engine is consuming its
	// recorded WAL: the commit sink re-derives commits silently (executor
	// still applies; the CommitHook is suppressed, as the node runtime flags
	// replayed commits).
	replaying []bool
	// walLogs records each validator's inserted certificates in insertion
	// order when recordWALs is set — the simulated write-ahead log a
	// KillRestart recovers from.
	walLogs    [][]*engine.Certificate
	recordWALs bool
	restarts   uint64
	cfg        ClusterConfig

	latency  LatencyModel
	onCommit CommitHook
	dropRate float64

	msgsSent    uint64
	bytesSent   uint64
	msgsDropped uint64
	preDropped  uint64

	// insertTap, when set (tests), observes every certificate a validator
	// accepts into its DAG, in insertion order. The pipeline determinism
	// test replays this sequence into fresh serial and pipelined engines and
	// asserts byte-identical commit streams.
	insertTap func(node types.ValidatorID, cert *engine.Certificate)
}

// NewCluster wires the deployment; call Start to boot the validators.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Committee == nil || cfg.Latency == nil || cfg.NewScheduler == nil {
		return nil, fmt.Errorf("simnet: committee, latency and scheduler factory are required")
	}
	if cfg.MempoolSize == 0 {
		cfg.MempoolSize = 1 << 20
	}
	n := cfg.Committee.Size()
	c := &Cluster{
		Sim:              New(cfg.Seed),
		Committee:        cfg.Committee,
		crashedAt:        make([]int64, n),
		slowFrom:         make([]int64, n),
		slowUntil:        make([]int64, n),
		slowMul:          make([]float64, n),
		badSigAt:         make([]int64, n),
		withholdAt:       make([]int64, n),
		withholdFrom:     make([]map[types.ValidatorID]bool, n),
		voteWithholdAt:   make([]int64, n),
		voteWithholdFrom: make([]map[types.ValidatorID]bool, n),
		certWithholdAt:   make([]int64, n),
		certWithholdFrom: make([]map[types.ValidatorID]bool, n),
		incarnation:      make([]uint64, n),
		replaying:        make([]bool, n),
		latency:          cfg.Latency,
		onCommit:         cfg.OnCommit,
		dropRate:         cfg.DropRate,
		insertTap:        cfg.OnInsert,
	}
	for i := range c.crashedAt {
		c.crashedAt[i] = -1
		c.slowMul[i] = 1
		c.badSigAt[i] = -1
		c.withholdAt[i] = -1
		c.voteWithholdAt[i] = -1
		c.certWithholdAt[i] = -1
	}

	// Simulated deployments are crash-only (as is the paper's evaluation);
	// use the insecure scheme and skip verification unless asked otherwise.
	scheme := crypto.Scheme(crypto.Insecure{})
	if cfg.Engine.VerifySignatures {
		scheme = crypto.Ed25519{}
	}
	var clusterSeed [32]byte
	clusterSeed[0] = byte(cfg.Seed)
	pubKeys := make([]crypto.PublicKey, n)
	keyPairs := make([]crypto.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := crypto.NewKeyPair(scheme, clusterSeed, uint32(i))
		if err != nil {
			return nil, fmt.Errorf("simnet: generating keys: %w", err)
		}
		keyPairs[i] = kp
		pubKeys[i] = kp.Public
	}
	c.keys = keyPairs

	c.pubKeys = pubKeys

	// Simulated engines always run the serial path: the order stage's
	// goroutine would break virtual time (commits must land at a definite
	// simulated instant). Pipelined ordering is byte-identical to serial by
	// construction — the determinism test in this package proves it — so
	// simulation results transfer to pipelined deployments.
	cfg.Engine.PipelineDepth = 0
	c.cfg = cfg
	for i := 0; i < n; i++ {
		eng, pool, exec, err := c.buildValidator(types.ValidatorID(i), nil)
		if err != nil {
			return nil, err
		}
		c.engines = append(c.engines, eng)
		c.pools = append(c.pools, pool)
		c.execs = append(c.execs, exec)
	}
	if cfg.Engine.VerifySignatures {
		c.prevers = make([]*engine.PreVerifier, n)
		for i := 0; i < n; i++ {
			c.prevers[i] = engine.NewPreVerifier(scheme, cfg.Committee, pubKeys, cfg.Engine.VerifyWorkers)
		}
	}
	return c, nil
}

// buildValidator assembles one validator's full in-memory state — mempool,
// DAG, scheduler, executor (over the given snapshot store, which models the
// validator's disk; nil = fresh) and engine. Used at cluster construction and
// again by KillRestart, which rebuilds everything a SIGKILL destroys.
func (c *Cluster) buildValidator(id types.ValidatorID, store execution.SnapshotStore) (*engine.Engine, *mempool.Pool, *execution.Executor, error) {
	cfg := c.cfg
	pool := mempool.NewSharded(cfg.MempoolSize, cfg.MempoolShards)
	d := dag.New(cfg.Committee)
	sched, err := cfg.NewScheduler(cfg.Committee, d)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("simnet: building scheduler for %s: %w", id, err)
	}
	var exec *execution.Executor
	if cfg.Execution {
		_, stateful := sched.(leader.StateRestorer)
		exec = execution.NewExecutor(execution.NewKVState(), execution.Config{
			CheckpointInterval: cfg.CheckpointInterval,
			Store:              store,
			// A stateful scheduler (HammerHead) must never install a snapshot
			// without the schedule it was cut under.
			RequireSchedulerState: stateful,
		})
	}
	params := engine.Params{
		Config:     cfg.Engine,
		Committee:  cfg.Committee,
		Self:       id,
		Keys:       c.keys[id],
		PublicKeys: c.pubKeys,
		Batches:    pool,
		Scheduler:  sched,
		DAG:        d,
		// Serial engines invoke the sink synchronously inside the step, so
		// Sim.Now() is the commit's virtual time.
		Commits: engine.CommitSinkFunc(func(sub bullshark.CommittedSubDAG) {
			if exec != nil {
				// The executor dedupes by sequence, so commits re-derived
				// during a restart's WAL replay apply idempotently.
				exec.ApplyCommit(sub)
			}
			if c.replaying[id] {
				return // replay re-derivations are not news to observers
			}
			if c.onCommit != nil {
				c.onCommit(id, sub, c.Sim.Now())
			}
		}),
	}
	if exec != nil {
		params.Snapshots = exec
		params.InstallSnapshot = exec.InstallFromWire
		params.AppliedSeq = exec.AppliedSeq
	}
	eng, err := engine.New(params)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("simnet: building engine for %s: %w", id, err)
	}
	return eng, pool, exec, nil
}

// Start boots every validator at the current virtual time.
func (c *Cluster) Start() {
	for i := range c.engines {
		id := types.ValidatorID(i)
		out := c.engines[i].Init(c.Sim.Now())
		c.dispatch(id, out)
	}
}

// Engine returns validator id's engine (read-only use: stats, committer).
func (c *Cluster) Engine(id types.ValidatorID) *engine.Engine { return c.engines[id] }

// Pool returns validator id's mempool.
func (c *Cluster) Pool(id types.ValidatorID) *mempool.Pool { return c.pools[id] }

// Executor returns validator id's executor (nil unless the cluster was built
// with ClusterConfig.Execution).
func (c *Cluster) Executor(id types.ValidatorID) *execution.Executor { return c.execs[id] }

// Size returns the committee size.
func (c *Cluster) Size() int { return len(c.engines) }

// MessagesSent returns the cumulative network message count.
func (c *Cluster) MessagesSent() uint64 { return c.msgsSent }

// BytesSent returns the cumulative network byte count.
func (c *Cluster) BytesSent() uint64 { return c.bytesSent }

// ---- fault injection ----

// CrashAt stops a validator at the given virtual time: it processes no
// events and its queued messages are dropped at delivery. CrashNow crashes
// at the current time (use before Start for crash-from-genesis faults).
func (c *Cluster) CrashAt(id types.ValidatorID, at time.Duration) {
	c.crashedAt[id] = at.Nanoseconds()
}

// Recover un-crashes a validator at a future virtual time by scheduling its
// revival: it rejoins with its pre-crash state (crash-recovery of in-memory
// state is exercised separately in internal/storage tests; the simulated
// revival models a process restart that restored state from its WAL).
func (c *Cluster) Recover(id types.ValidatorID, at time.Duration) {
	c.Sim.After(at-time.Duration(c.Sim.Now()), func() {
		c.crashedAt[id] = -1
		// Nudge the revived node: re-arm its pacing so it resumes proposing.
		out := c.engines[id].OnTimer(engine.Timer{
			Kind:  engine.TimerRoundDelay,
			Round: uint64(c.engines[id].Round()),
		}, c.Sim.Now())
		c.dispatch(id, out)
	})
}

// RecordWALs begins recording every certificate each validator inserts, in
// insertion order — the simulated equivalent of the node runtime's
// write-ahead log. Must be called before Start; required by KillRestart.
func (c *Cluster) RecordWALs() {
	c.recordWALs = true
	c.walLogs = make([][]*engine.Certificate, len(c.engines))
}

// Restarts returns how many validator restarts KillRestart has performed.
func (c *Cluster) Restarts() uint64 { return c.restarts }

// KillRestart SIGKILLs the given validators at virtual time `at` and
// restarts each from its recorded WAL after `downtime`. Unlike the graceful
// Recover fault, this models a real process kill: every in-flight message to
// or from the validator is discarded, all in-memory state (engine, DAG,
// scheduler, mempool, executor) is destroyed and rebuilt from scratch, the
// recorded certificate log is replayed silently (exactly as node recovery
// suppresses replay outputs), and the validator re-enters the committee
// through the crash-rejoin handshake. Only the snapshot store — the
// validator's "disk" — survives. Panics unless RecordWALs was called.
func (c *Cluster) KillRestart(ids []types.ValidatorID, at, downtime time.Duration) {
	if !c.recordWALs {
		panic("simnet: KillRestart requires RecordWALs before Start")
	}
	targets := append([]types.ValidatorID(nil), ids...)
	c.Sim.After(at-time.Duration(c.Sim.Now()), func() {
		now := c.Sim.Now()
		for _, id := range targets {
			c.crashedAt[id] = now
			// Kill-side incarnation bump: pending deliveries and timers of the
			// dead process die at their scheduled instant.
			c.incarnation[id]++
		}
	})
	c.Sim.After(at+downtime-time.Duration(c.Sim.Now()), func() {
		for _, id := range targets {
			c.restartFromWAL(id)
		}
	})
}

// KillRestartAll SIGKILLs the whole committee simultaneously — the
// correlated power-loss / rolling-infra-failure scenario a production
// deployment must survive — and restarts every validator from its WAL.
func (c *Cluster) KillRestartAll(at, downtime time.Duration) {
	ids := make([]types.ValidatorID, len(c.engines))
	for i := range ids {
		ids[i] = types.ValidatorID(i)
	}
	c.KillRestart(ids, at, downtime)
}

// restartFromWAL rebuilds one validator and mirrors the node runtime's
// recovery sequence: snapshot restore → silent WAL replay → go live → rejoin.
func (c *Cluster) restartFromWAL(id types.ValidatorID) {
	var store execution.SnapshotStore
	if old := c.execs[id]; old != nil {
		store = old.Store() // the snapshot store is the disk: it survives
	}
	eng, pool, exec, err := c.buildValidator(id, store)
	if err != nil {
		// The same configuration built the validator once already; a failure
		// here is a harness bug, not a simulated fault.
		panic(fmt.Sprintf("simnet: rebuilding %s after kill: %v", id, err))
	}
	c.engines[id] = eng
	c.pools[id] = pool
	c.execs[id] = exec
	// Restart-side incarnation bump: messages sent while the process was down
	// must not leak into the rebuilt engine.
	c.incarnation[id]++
	c.crashedAt[id] = -1
	c.restarts++

	now := c.Sim.Now()
	c.replaying[id] = true
	if exec != nil {
		// A locally persisted checkpoint fast-forwards executor and engine
		// before WAL replay, exactly as the node runtime does. The output is
		// discarded: nothing transmits during recovery.
		if snap, ok := exec.Store().Latest(); ok {
			if meta, install, err := exec.InstallLocal(snap); err == nil {
				eng.FastForwardToSnapshot(meta, install, now)
			}
		}
	}
	initOut := eng.Init(now)
	for _, cert := range c.walLogs[id] {
		// Clone per replay, as the node's gob decode would: the rebuilt
		// engine owns (and may mutate) its copies, while the recorded
		// originals stay pristine for the next restart.
		msg := (&engine.Message{Kind: engine.KindCertificate, Cert: cert}).Clone()
		eng.OnMessage(id, msg, now) // outputs discarded — replay is silent
	}
	c.replaying[id] = false
	c.dispatch(id, initOut)
	c.dispatch(id, eng.StartRejoin(now))
}

// CorruptSignatures makes a validator emit garbage signatures on every
// header, vote and certificate it sends from the given virtual time on — a
// Byzantine signer. Requires ClusterConfig.Engine.VerifySignatures; with
// verification disabled the corruption goes undetected by construction
// (crash-only model). Receivers' pre-verify stages must drop the traffic
// without it ever reaching their engines.
func (c *Cluster) CorruptSignatures(id types.ValidatorID, from time.Duration) {
	c.badSigAt[id] = from.Nanoseconds()
}

// PreVerifyDropped returns the total number of messages rejected by the
// validators' pre-verify stages.
func (c *Cluster) PreVerifyDropped() uint64 { return c.preDropped }

// ForgeGhostCerts makes validator id act Byzantine from the given virtual
// time on: every interval it broadcasts a correctly-signed, quorum-voted
// certificate whose header references a parent digest that exists nowhere.
// This models a real attack: voters never check that a header's edges
// resolve (they cannot — an honest proposer may reference parents the voter
// has not received yet), so a Byzantine proposer collects genuine votes for
// a fabricated-edge header and certifies it. Receivers pend the certificate
// waiting for the ghost parent; only pending-state garbage collection
// bounds the damage (see TestGhostParentChurnKeepsPendingBounded).
func (c *Cluster) ForgeGhostCerts(id types.ValidatorID, from, every time.Duration) {
	seq := uint64(0)
	var tick func()
	tick = func() {
		now := c.Sim.Now()
		if !c.crashed(id, now) {
			seq++
			c.broadcastGhostCert(id, seq, now)
		}
		c.Sim.After(every, tick)
	}
	c.Sim.After(from-time.Duration(c.Sim.Now()), tick)
}

func (c *Cluster) broadcastGhostCert(id types.ValidatorID, seq uint64, now int64) {
	round := c.engines[id].DAG().HighestRound() + 1
	var ghost types.Digest
	ghost[0], ghost[1] = 0xBA, byte(id)
	for i := 0; i < 8; i++ {
		ghost[2+i] = byte(seq >> (8 * i))
	}
	header := engine.Header{Round: round, Source: id, Edges: []types.Digest{ghost}}
	digest := header.Digest()
	sig, err := c.keys[id].Sign(digest[:])
	if err != nil {
		return
	}
	header.Signature = sig
	cert := &engine.Certificate{Header: header}
	for j := range c.engines {
		// Honest voters WOULD sign this header (edges are unchecked at vote
		// time), so signing on their behalf reproduces exactly the quorum a
		// real Byzantine proposer collects.
		vsig, err := c.keys[j].Sign(digest[:])
		if err != nil {
			return
		}
		cert.Votes = append(cert.Votes, engine.VoteSig{Voter: types.ValidatorID(j), Signature: vsig})
	}
	msg := &engine.Message{Kind: engine.KindCertificate, Cert: cert}
	for i := range c.engines {
		if to := types.ValidatorID(i); to != id {
			c.send(id, to, msg, now)
		}
	}
}

// Withhold makes validator id suppress its OWN header broadcasts toward the
// given peers from the given virtual time on — the selective-withholding
// Byzantine leader of the paper's §1 incident. Withholding from more than
// n-quorum peers starves the validator's headers of a vote quorum, so its
// vertices never certify and never enter anyone's DAG: to the committee it
// looks like a leader that is up (it still votes and relays) but whose
// proposals never land — exactly the behavior reputation scheduling must
// score out and round-robin keeps re-electing.
func (c *Cluster) Withhold(id types.ValidatorID, peers []types.ValidatorID, from time.Duration) {
	set := make(map[types.ValidatorID]bool, len(peers))
	for _, p := range peers {
		set[p] = true
	}
	c.withholdFrom[id] = set
	c.withholdAt[id] = from.Nanoseconds()
}

// WithholdVotes makes validator id suppress its votes for headers
// originating from the given peers from the given virtual time on — the
// vote-withholding variant of Withhold. The withholder still proposes,
// relays and votes for everyone else, so every health signal it emits looks
// normal; only the targeted proposers suffer, and with enough withholders
// (n minus quorum plus one) their vertices never certify at all.
func (c *Cluster) WithholdVotes(id types.ValidatorID, peers []types.ValidatorID, from time.Duration) {
	set := make(map[types.ValidatorID]bool, len(peers))
	for _, p := range peers {
		set[p] = true
	}
	c.voteWithholdFrom[id] = set
	c.voteWithholdAt[id] = from.Nanoseconds()
}

// WithholdCerts makes validator id suppress its DAG certificate broadcasts
// (engine.KindCertificate) toward the given peers from the given virtual
// time on — the third member of the withholding family. Headers and votes
// still flow, so the withholder certifies its own vertices and looks fully
// alive; the targets simply never receive the resulting certificates and
// must recover them through certificate resync (or fall behind when too few
// honest relays remain).
func (c *Cluster) WithholdCerts(id types.ValidatorID, peers []types.ValidatorID, from time.Duration) {
	set := make(map[types.ValidatorID]bool, len(peers))
	for _, p := range peers {
		set[p] = true
	}
	c.certWithholdFrom[id] = set
	c.certWithholdAt[id] = from.Nanoseconds()
}

// SlowDown multiplies all message latencies touching the validator by
// factor within [from, until] — the §1 incident's "less responsive"
// validators.
func (c *Cluster) SlowDown(id types.ValidatorID, factor float64, from, until time.Duration) {
	c.slowFrom[id] = from.Nanoseconds()
	c.slowUntil[id] = until.Nanoseconds()
	c.slowMul[id] = factor
}

func (c *Cluster) crashed(id types.ValidatorID, now int64) bool {
	at := c.crashedAt[id]
	return at >= 0 && now >= at
}

func (c *Cluster) slowFactor(id types.ValidatorID, now int64) float64 {
	if c.slowMul[id] != 1 && now >= c.slowFrom[id] && now <= c.slowUntil[id] {
		return c.slowMul[id]
	}
	return 1
}

// ---- client interface ----

// SubmitTx hands a transaction to a validator's mempool, stamping the
// submission time. Submitting to a crashed validator fails, mirroring a
// client whose target is down (callers fail over).
func (c *Cluster) SubmitTx(id types.ValidatorID, tx types.Transaction) error {
	if c.crashed(id, c.Sim.Now()) {
		return fmt.Errorf("simnet: validator %s is crashed", id)
	}
	if tx.SubmitTimeNanos == 0 {
		tx.SubmitTimeNanos = c.Sim.Now()
	}
	return c.pools[id].Submit(tx)
}

// ---- event plumbing ----

// dispatch routes one engine step's output into the simulation.
func (c *Cluster) dispatch(from types.ValidatorID, out *engine.Output) {
	now := c.Sim.Now()
	for _, u := range out.Unicasts {
		c.send(from, u.To, u.Msg, now)
	}
	for _, msg := range out.Broadcasts {
		for i := range c.engines {
			to := types.ValidatorID(i)
			if to == from {
				continue
			}
			c.send(from, to, msg, now)
		}
	}
	for _, t := range out.Timers {
		timer := t
		inc := c.incarnation[from]
		c.Sim.After(t.Delay, func() {
			// The incarnation check kills timers armed by a SIGKILLed
			// process: a restarted validator must never receive callbacks the
			// dead incarnation scheduled.
			if c.incarnation[from] != inc || c.crashed(from, c.Sim.Now()) {
				return
			}
			c.dispatch(from, c.engines[from].OnTimer(timer, c.Sim.Now()))
		})
	}
	if c.recordWALs {
		// The recorded log persists across KillRestart (it IS the WAL);
		// replayed re-inserts bypass dispatch, so nothing records twice.
		c.walLogs[from] = append(c.walLogs[from], out.InsertedCerts...)
	}
	if c.insertTap != nil {
		for _, cert := range out.InsertedCerts {
			c.insertTap(from, cert)
		}
	}
}

// MessagesDropped returns the number of messages lost to DropRate.
func (c *Cluster) MessagesDropped() uint64 { return c.msgsDropped }

func (c *Cluster) send(from, to types.ValidatorID, msg *engine.Message, now int64) {
	if c.crashed(from, now) {
		return
	}
	if c.dropRate > 0 && c.Sim.Rand().Float64() < c.dropRate {
		c.msgsDropped++
		return
	}
	if at := c.withholdAt[from]; at >= 0 && now >= at &&
		msg.Kind == engine.KindHeader && msg.Header != nil &&
		msg.Header.Source == from && c.withholdFrom[from][to] {
		// Selective withholding: only the validator's own headers are
		// suppressed — it keeps voting and relaying, so it looks alive.
		return
	}
	if at := c.voteWithholdAt[from]; at >= 0 && now >= at &&
		msg.Kind == engine.KindVote && msg.Vote != nil &&
		msg.Vote.Voter == from && c.voteWithholdFrom[from][msg.Vote.Origin] {
		// Vote-withholding variant: only votes endorsing the targeted
		// origins are dropped; everything else flows normally.
		return
	}
	if at := c.certWithholdAt[from]; at >= 0 && now >= at &&
		msg.Kind == engine.KindCertificate && msg.Cert != nil &&
		c.certWithholdFrom[from][to] {
		// Certificate withholding: the sender's DAG certificate broadcasts
		// toward the targets vanish; headers and votes still flow.
		return
	}
	if at := c.badSigAt[from]; at >= 0 && now >= at {
		msg = corruptSignatures(msg) // clones internally
	} else if c.prevers != nil {
		// Each recipient owns its copy, as after a gob decode: the
		// pre-verify stage marks (and may strip votes from) payloads, and
		// neither the sender's state nor a sibling recipient's copy may be
		// affected.
		msg = msg.Clone()
	}
	size := msg.EncodedSize()
	c.msgsSent++
	c.bytesSent += uint64(size)
	delay := c.latency.Delay(int(from), int(to), size, c.Sim.Rand())
	slow := c.slowFactor(from, now) * c.slowFactor(to, now)
	if slow != 1 {
		delay = time.Duration(float64(delay) * slow)
	}
	inc := c.incarnation[to]
	c.Sim.After(delay, func() {
		// The incarnation check models SIGKILL's message loss: anything in
		// flight toward a killed process — or sent while it was down — is
		// gone, even if the validator is back up by the delivery instant.
		if c.incarnation[to] != inc || c.crashed(to, c.Sim.Now()) {
			return
		}
		if c.prevers != nil && engine.NeedsCheck(msg.Kind) && !c.prevers[to].Check(msg) {
			c.preDropped++
			return
		}
		c.dispatch(to, c.engines[to].OnMessage(from, msg, c.Sim.Now()))
	})
}

// corruptSignatures returns a copy of msg with every signature replaced by
// garbage of the same length, leaving the original (which the sender's own
// state may reference) untouched.
func corruptSignatures(msg *engine.Message) *engine.Message {
	m := msg.Clone()
	switch m.Kind {
	case engine.KindHeader:
		m.Header.Signature = mangle(m.Header.Signature)
	case engine.KindVote:
		m.Vote.Signature = mangle(m.Vote.Signature)
	case engine.KindCertificate:
		for i := range m.Cert.Votes {
			m.Cert.Votes[i].Signature = mangle(m.Cert.Votes[i].Signature)
		}
	case engine.KindCertResponse:
		for _, cert := range m.CertResponse.Certs {
			for i := range cert.Votes {
				cert.Votes[i].Signature = mangle(cert.Votes[i].Signature)
			}
		}
	}
	return m
}

func mangle(sig crypto.Signature) crypto.Signature {
	if len(sig) == 0 {
		return crypto.Signature{0xBA, 0xD5, 0x16}
	}
	out := append(crypto.Signature(nil), sig...)
	for i := range out {
		out[i] ^= 0xA5
	}
	return out
}
