package simnet_test

import (
	"testing"
	"time"

	"hammerhead/internal/bullshark"
	"hammerhead/internal/core"
	"hammerhead/internal/dag"
	"hammerhead/internal/engine"
	"hammerhead/internal/leader"
	"hammerhead/internal/simnet"
	"hammerhead/internal/types"
)

func roundRobinFactory(seed uint64) simnet.SchedulerFactory {
	return func(c *types.Committee, _ *dag.DAG) (leader.Scheduler, error) {
		return leader.NewRoundRobin(c, seed), nil
	}
}

func hammerheadFactory(cfg core.Config) simnet.SchedulerFactory {
	return func(c *types.Committee, d *dag.DAG) (leader.Scheduler, error) {
		return core.NewManager(c, d, cfg)
	}
}

func fastEngineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.MinRoundDelay = 50 * time.Millisecond
	cfg.LeaderTimeout = 500 * time.Millisecond
	cfg.VerifySignatures = false
	return cfg
}

// commitRecorder collects per-node anchor sequences and tx latencies.
type commitRecorder struct {
	anchors   map[types.ValidatorID][]types.Digest
	txLatency []time.Duration
	measureAt types.ValidatorID
}

func newCommitRecorder(measureAt types.ValidatorID) *commitRecorder {
	return &commitRecorder{
		anchors:   make(map[types.ValidatorID][]types.Digest),
		measureAt: measureAt,
	}
}

func (r *commitRecorder) hook(node types.ValidatorID, sub bullshark.CommittedSubDAG, now int64) {
	r.anchors[node] = append(r.anchors[node], sub.Anchor.Digest())
	if node != r.measureAt {
		return
	}
	for _, v := range sub.Vertices {
		if v.Batch == nil {
			continue
		}
		for _, tx := range v.Batch.Transactions {
			if tx.SubmitTimeNanos > 0 {
				r.txLatency = append(r.txLatency, time.Duration(now-tx.SubmitTimeNanos))
			}
		}
	}
}

func prefixConsistent(a, b []types.Digest) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newCluster(t *testing.T, n int, factory simnet.SchedulerFactory, rec *commitRecorder, seed int64) *simnet.Cluster {
	t.Helper()
	committee, err := types.NewEqualStakeCommittee(n)
	if err != nil {
		t.Fatal(err)
	}
	var hook simnet.CommitHook
	if rec != nil {
		hook = rec.hook
	}
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		Committee:    committee,
		Engine:       fastEngineConfig(),
		Latency:      simnet.Uniform{Base: 25 * time.Millisecond, Jitter: 0.1},
		NewScheduler: factory,
		OnCommit:     hook,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

// submitLoad schedules an open-loop tx stream to one validator.
func submitLoad(c *simnet.Cluster, to types.ValidatorID, every time.Duration, until time.Duration) {
	var next func()
	id := uint64(0)
	next = func() {
		if time.Duration(c.Sim.Now()) >= until {
			return
		}
		id++
		_ = c.SubmitTx(to, types.Transaction{ID: id, Payload: []byte("tx")})
		c.Sim.After(every, next)
	}
	c.Sim.After(every, next)
}

func TestClusterCommitsFaultless(t *testing.T) {
	rec := newCommitRecorder(0)
	cluster := newCluster(t, 4, roundRobinFactory(1), rec, 7)
	submitLoad(cluster, 0, 20*time.Millisecond, 10*time.Second)
	cluster.Start()
	cluster.Sim.RunFor(12 * time.Second)

	for i := 0; i < 4; i++ {
		id := types.ValidatorID(i)
		if len(rec.anchors[id]) == 0 {
			t.Fatalf("validator %s committed nothing", id)
		}
	}
	// Safety: all per-node anchor sequences prefix-consistent.
	for i := 1; i < 4; i++ {
		if !prefixConsistent(rec.anchors[0], rec.anchors[types.ValidatorID(i)]) {
			t.Fatalf("validator v%d's commit sequence diverges from v0's", i)
		}
	}
	// Liveness: transactions achieved finality with sane latency.
	if len(rec.txLatency) == 0 {
		t.Fatal("no transactions reached finality")
	}
	var sum time.Duration
	for _, l := range rec.txLatency {
		sum += l
	}
	avg := sum / time.Duration(len(rec.txLatency))
	if avg <= 0 || avg > 3*time.Second {
		t.Fatalf("average latency %v implausible for a 25ms-RTT network", avg)
	}
	// No leader timeouts in a faultless run.
	for i := 0; i < 4; i++ {
		if got := cluster.Engine(types.ValidatorID(i)).Stats().LeaderTimeouts; got != 0 {
			t.Fatalf("validator v%d fired %d leader timeouts in a faultless run", i, got)
		}
	}
}

func TestClusterDeterministicBySeed(t *testing.T) {
	run := func() (uint64, uint64, []types.Digest) {
		rec := newCommitRecorder(0)
		cluster := newCluster(t, 4, roundRobinFactory(1), rec, 42)
		submitLoad(cluster, 1, 30*time.Millisecond, 5*time.Second)
		cluster.Start()
		cluster.Sim.RunFor(6 * time.Second)
		return cluster.MessagesSent(), cluster.Sim.Processed(), rec.anchors[2]
	}
	m1, p1, a1 := run()
	m2, p2, a2 := run()
	if m1 != m2 || p1 != p2 {
		t.Fatalf("runs differ: msgs %d vs %d, events %d vs %d", m1, m2, p1, p2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("commit counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("anchor %d differs between identical runs", i)
		}
	}
}

func TestClusterBaselineSuffersCrashedLeader(t *testing.T) {
	// With a crashed validator, the round-robin baseline keeps electing it
	// and fires leader timeouts forever.
	rec := newCommitRecorder(0)
	cluster := newCluster(t, 4, roundRobinFactory(1), rec, 3)
	cluster.CrashAt(3, 0)
	cluster.Start()
	cluster.Sim.RunFor(20 * time.Second)

	if len(rec.anchors[0]) == 0 {
		t.Fatal("liveness lost: no commits with one crashed validator")
	}
	var timeouts uint64
	for i := 0; i < 3; i++ {
		timeouts += cluster.Engine(types.ValidatorID(i)).Stats().LeaderTimeouts
	}
	if timeouts == 0 {
		t.Fatal("baseline must fire leader timeouts for the crashed leader")
	}
	skipped := cluster.Engine(0).Committer().Stats().SkippedAnchors
	if skipped == 0 {
		t.Fatal("baseline must skip the crashed leader's anchors")
	}
}

func TestClusterHammerHeadExcludesCrashedLeader(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.EpochCommits = 5
	rec := newCommitRecorder(0)
	cluster := newCluster(t, 4, hammerheadFactory(cfg), rec, 3)
	cluster.CrashAt(3, 0)
	cluster.Start()
	cluster.Sim.RunFor(30 * time.Second)

	if len(rec.anchors[0]) == 0 {
		t.Fatal("no commits")
	}
	// Every live validator's scheduler must have switched and excluded v3.
	for i := 0; i < 3; i++ {
		m, ok := cluster.Engine(types.ValidatorID(i)).Scheduler().(*core.Manager)
		if !ok {
			t.Fatal("scheduler is not a HammerHead manager")
		}
		if m.SwitchCount() == 0 {
			t.Fatalf("validator v%d never switched schedules", i)
		}
		excluded := m.Excluded()
		if len(excluded) != 1 || excluded[0] != 3 {
			t.Fatalf("validator v%d excluded %v, want [v3]", i, excluded)
		}
	}
	// After the swap the active schedule never elects v3, so late-window
	// leader timeouts must stop. Compare to the baseline in the test above
	// qualitatively: skipped anchors stay bounded.
	skipped := cluster.Engine(0).Committer().Stats().SkippedAnchors
	if skipped > 8 {
		t.Fatalf("HammerHead skipped %d anchors; exclusion is not working", skipped)
	}
	// Safety across validators.
	for i := 1; i < 4; i++ {
		if !prefixConsistent(rec.anchors[0], rec.anchors[types.ValidatorID(i)]) {
			t.Fatalf("validator v%d's commits diverge", i)
		}
	}
}

func TestClusterCrashRecoveryCatchesUp(t *testing.T) {
	rec := newCommitRecorder(0)
	cluster := newCluster(t, 4, roundRobinFactory(1), rec, 5)
	cluster.CrashAt(2, 5*time.Second)
	cluster.Recover(2, 10*time.Second)
	cluster.Start()
	cluster.Sim.RunFor(25 * time.Second)

	healthy := cluster.Engine(0).Committer().LastOrderedRound()
	recovered := cluster.Engine(2).Committer().LastOrderedRound()
	if healthy == 0 {
		t.Fatal("healthy validators made no progress")
	}
	if recovered == 0 {
		t.Fatal("recovered validator never committed")
	}
	if healthy-recovered > 10 {
		t.Fatalf("recovered validator lags %d rounds behind (healthy %d, recovered %d)",
			healthy-recovered, healthy, recovered)
	}
	if !prefixConsistent(rec.anchors[2], rec.anchors[0]) {
		t.Fatal("recovered validator's commit sequence diverges")
	}
}

func TestClusterSlowdownInflatesLatency(t *testing.T) {
	// The §1 incident in miniature: degrade one validator's links mid-run
	// and verify rounds keep progressing (no stall).
	rec := newCommitRecorder(0)
	cluster := newCluster(t, 4, roundRobinFactory(1), rec, 8)
	cluster.SlowDown(1, 8.0, 5*time.Second, 15*time.Second)
	submitLoad(cluster, 0, 50*time.Millisecond, 18*time.Second)
	cluster.Start()
	cluster.Sim.RunFor(20 * time.Second)
	if len(rec.txLatency) == 0 {
		t.Fatal("no finality under slowdown")
	}
	if len(rec.anchors[0]) < 5 {
		t.Fatalf("only %d commits in 20s under a single slow validator", len(rec.anchors[0]))
	}
}

func TestGeoModel(t *testing.T) {
	g := simnet.NewGeo(100)
	if got := len(g.RegionOf); got != 100 {
		t.Fatalf("RegionOf length = %d", got)
	}
	// Round-robin assignment: validators 0 and 13 share region 0.
	if g.RegionName(0) != g.RegionName(13) {
		t.Fatal("round-robin region assignment broken")
	}
	// Symmetry and positivity of RTTs.
	for a := 0; a < 13; a++ {
		for b := 0; b < 13; b++ {
			if g.RTT(a, b) != g.RTT(b, a) {
				t.Fatalf("RTT asymmetric between %d and %d", a, b)
			}
			if g.RTT(a, b) <= 0 {
				t.Fatalf("RTT(%d,%d) = %v", a, b, g.RTT(a, b))
			}
		}
	}
	// Intra-region must be far cheaper than trans-pacific.
	if g.RTT(0, 0) >= g.RTT(0, 10) {
		t.Fatal("intra-region RTT must be below us-east<->sydney")
	}
}

func TestSimulatorOrdering(t *testing.T) {
	s := simnet.New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(10*time.Millisecond, func() { got = append(got, 2) }) // same instant: FIFO
	s.RunFor(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("event order = %v, want [1 2 3]", got)
	}
	if s.Now() != time.Second.Nanoseconds() {
		t.Fatalf("Now = %d, want 1s", s.Now())
	}
	if s.Processed() != 3 {
		t.Fatalf("Processed = %d, want 3", s.Processed())
	}
}
