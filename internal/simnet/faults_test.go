package simnet_test

import (
	"testing"
	"time"

	"hammerhead/internal/core"
	"hammerhead/internal/simnet"
	"hammerhead/internal/types"
)

func newClusterWithConfig(t *testing.T, cfg simnet.ClusterConfig) *simnet.Cluster {
	t.Helper()
	cluster, err := simnet.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

func TestClusterSurvivesMessageLoss(t *testing.T) {
	// 5% of all messages vanish: header retransmission and causal sync must
	// keep the cluster live and safe.
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	rec := newCommitRecorder(0)
	cluster := newClusterWithConfig(t, simnet.ClusterConfig{
		Committee:    committee,
		Engine:       fastEngineConfig(),
		Latency:      simnet.Uniform{Base: 25 * time.Millisecond, Jitter: 0.1},
		NewScheduler: roundRobinFactory(1),
		OnCommit:     rec.hook,
		Seed:         21,
		DropRate:     0.05,
	})
	submitLoad(cluster, 0, 50*time.Millisecond, 25*time.Second)
	cluster.Start()
	cluster.Sim.RunFor(30 * time.Second)

	if cluster.MessagesDropped() == 0 {
		t.Fatal("drop injection did not fire")
	}
	if len(rec.anchors[0]) < 5 {
		t.Fatalf("only %d commits under 5%% loss", len(rec.anchors[0]))
	}
	for i := 1; i < 4; i++ {
		if !prefixConsistent(rec.anchors[0], rec.anchors[types.ValidatorID(i)]) {
			t.Fatalf("commit sequences diverge under message loss (v%d)", i)
		}
	}
	if len(rec.txLatency) == 0 {
		t.Fatal("no transaction reached finality under loss")
	}
}

func TestClusterSurvivesHeavyLossWithHammerHead(t *testing.T) {
	// 15% loss plus a crashed validator plus schedule switching — the
	// adversarial kitchen sink for the sync machinery.
	committee, err := types.NewEqualStakeCommittee(7)
	if err != nil {
		t.Fatal(err)
	}
	hh := core.DefaultConfig()
	hh.EpochCommits = 4
	rec := newCommitRecorder(0)
	cluster := newClusterWithConfig(t, simnet.ClusterConfig{
		Committee:    committee,
		Engine:       fastEngineConfig(),
		Latency:      simnet.Uniform{Base: 25 * time.Millisecond, Jitter: 0.2},
		NewScheduler: hammerheadFactory(hh),
		OnCommit:     rec.hook,
		Seed:         5,
		DropRate:     0.15,
	})
	cluster.CrashAt(6, 0)
	cluster.Start()
	cluster.Sim.RunFor(60 * time.Second)

	if len(rec.anchors[0]) < 5 {
		t.Fatalf("only %d commits under 15%% loss + crash", len(rec.anchors[0]))
	}
	for i := 1; i < 6; i++ {
		if !prefixConsistent(rec.anchors[0], rec.anchors[types.ValidatorID(i)]) {
			t.Fatalf("commit sequences diverge (v%d)", i)
		}
	}
	m, ok := cluster.Engine(0).Scheduler().(*core.Manager)
	if !ok || m.SwitchCount() == 0 {
		t.Fatal("schedule never switched under loss")
	}
}

func TestClusterAsynchronyThenGST(t *testing.T) {
	// Model a pre-GST period: every link is 20x slower for the first 10
	// simulated seconds, then the network stabilizes. Liveness must resume
	// and all progress must stay prefix-consistent (the paper's partial
	// synchrony model).
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	rec := newCommitRecorder(0)
	cluster := newClusterWithConfig(t, simnet.ClusterConfig{
		Committee:    committee,
		Engine:       fastEngineConfig(),
		Latency:      simnet.Uniform{Base: 25 * time.Millisecond, Jitter: 0.1},
		NewScheduler: roundRobinFactory(1),
		OnCommit:     rec.hook,
		Seed:         13,
	})
	for i := 0; i < 4; i++ {
		cluster.SlowDown(types.ValidatorID(i), 20, 0, 10*time.Second)
	}
	cluster.Start()
	cluster.Sim.RunFor(40 * time.Second)

	if len(rec.anchors[0]) < 10 {
		t.Fatalf("only %d commits after GST", len(rec.anchors[0]))
	}
	for i := 1; i < 4; i++ {
		if !prefixConsistent(rec.anchors[0], rec.anchors[types.ValidatorID(i)]) {
			t.Fatalf("asynchrony broke agreement (v%d)", i)
		}
	}
}

func TestClusterTinyEpochStressesScheduleSwitches(t *testing.T) {
	// EpochByRounds with the minimum T=2 forces a schedule switch at nearly
	// every anchor, maximizing mid-chain switches and discarded tips — the
	// trickiest retroactivity path (paper §3's second challenge).
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	hh := core.DefaultConfig()
	hh.Policy = core.EpochByRounds
	hh.EpochRounds = 2
	rec := newCommitRecorder(0)
	cluster := newClusterWithConfig(t, simnet.ClusterConfig{
		Committee:    committee,
		Engine:       fastEngineConfig(),
		Latency:      simnet.Uniform{Base: 25 * time.Millisecond, Jitter: 0.15},
		NewScheduler: hammerheadFactory(hh),
		OnCommit:     rec.hook,
		Seed:         17,
	})
	cluster.CrashAt(3, 5*time.Second)
	cluster.Start()
	cluster.Sim.RunFor(45 * time.Second)

	m := cluster.Engine(0).Scheduler().(*core.Manager)
	if m.SwitchCount() < 10 {
		t.Fatalf("only %d switches with T=2", m.SwitchCount())
	}
	if len(rec.anchors[0]) < 10 {
		t.Fatalf("liveness suffered: %d commits", len(rec.anchors[0]))
	}
	for i := 1; i < 3; i++ {
		if !prefixConsistent(rec.anchors[0], rec.anchors[types.ValidatorID(i)]) {
			t.Fatalf("rapid switching broke agreement (v%d)", i)
		}
	}
	// All live validators agree on the schedule history.
	ref := m.History().Schedules()
	for i := 1; i < 3; i++ {
		other := cluster.Engine(types.ValidatorID(i)).Scheduler().(*core.Manager).History().Schedules()
		k := len(ref)
		if len(other) < k {
			k = len(other)
		}
		for j := 0; j < k; j++ {
			if ref[j].InitialRound() != other[j].InitialRound() {
				t.Fatalf("schedule %d initial round differs on v%d", j, i)
			}
			a, b := ref[j].Slots(), other[j].Slots()
			for idx := range a {
				if a[idx] != b[idx] {
					t.Fatalf("schedule %d slots differ on v%d", j, i)
				}
			}
		}
	}
}

func TestClusterGarbageCollectionBoundsState(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	engCfg := fastEngineConfig()
	engCfg.GCEvery = 4
	engCfg.GCDepth = 10
	cluster := newClusterWithConfig(t, simnet.ClusterConfig{
		Committee:    committee,
		Engine:       engCfg,
		Latency:      simnet.Uniform{Base: 10 * time.Millisecond, Jitter: 0.1},
		NewScheduler: roundRobinFactory(1),
		Seed:         3,
	})
	cluster.Start()
	cluster.Sim.RunFor(60 * time.Second)

	eng := cluster.Engine(0)
	if eng.DAG().PrunedTo() == 0 {
		t.Fatal("GC never pruned the DAG")
	}
	// Retained window must be bounded: roughly (lastOrdered - prunedTo) plus
	// the frontier, far below the total number of rounds seen.
	retainedRounds := eng.DAG().HighestRound() - eng.DAG().PrunedTo()
	if retainedRounds > 120 {
		t.Fatalf("retained %d rounds; GC is not keeping up", retainedRounds)
	}
	if eng.DAG().VertexCount() > int(retainedRounds+2)*4 {
		t.Fatalf("vertex count %d exceeds retained window", eng.DAG().VertexCount())
	}
}
