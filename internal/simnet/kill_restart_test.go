package simnet

import (
	"fmt"
	"testing"
	"time"

	"hammerhead/internal/bullshark"
	"hammerhead/internal/engine"
	"hammerhead/internal/execution"
	"hammerhead/internal/types"
)

// killRestartCluster builds an execution-enabled, WAL-recorded cluster with a
// per-validator commit timeline for post-crash liveness assertions.
func killRestartCluster(t *testing.T, factory SchedulerFactory, seed int64) (*Cluster, *[]commitAt) {
	t.Helper()
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSimEngineConfig()
	cfg.MinRoundDelay = 30 * time.Millisecond
	cfg.LeaderTimeout = 300 * time.Millisecond
	cfg.ResyncInterval = 150 * time.Millisecond
	if cfg.GCDepth != engine.DefaultConfig().GCDepth {
		t.Fatalf("test must run at the default GCDepth, got %d", cfg.GCDepth)
	}
	timeline := &[]commitAt{}
	cluster, err := NewCluster(ClusterConfig{
		Committee:          committee,
		Engine:             cfg,
		Latency:            Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler:       factory,
		Execution:          true,
		CheckpointInterval: 8,
		Seed:               seed,
		OnCommit: func(node types.ValidatorID, sub bullshark.CommittedSubDAG, nowNanos int64) {
			*timeline = append(*timeline, commitAt{node: node, at: nowNanos})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.RecordWALs()
	return cluster, timeline
}

type commitAt struct {
	node types.ValidatorID
	at   int64
}

// submitKVLoad schedules an open-loop PutOp stream across the live
// validators so the ledger state is non-trivial and roots have teeth.
func submitKVLoad(cluster *Cluster, until time.Duration) {
	var tick func()
	seq := uint64(0)
	tick = func() {
		if cluster.Sim.Now() >= until.Nanoseconds() {
			return
		}
		seq++
		key := []byte(fmt.Sprintf("k%03d", seq%211))
		val := []byte(fmt.Sprintf("v%d", seq))
		_ = cluster.SubmitTx(types.ValidatorID(seq%4), types.Transaction{
			ID:      seq,
			Payload: execution.PutOp(key, val),
		})
		cluster.Sim.After(5*time.Millisecond, tick)
	}
	cluster.Sim.After(5*time.Millisecond, tick)
}

// TestFullCommitteeKillRestartConverges is the acceptance test for the
// crash-rejoin handshake: EVERY validator is SIGKILLed mid-flight and
// restarted from its WAL simultaneously, at the default GCDepth. Before the
// handshake this wedged the committee at its pre-crash round forever —
// replay-time proposals were never on the wire, so round pulls found nothing
// new and nobody could complete the round. With it, commits must resume
// within the run budget and every validator's chained state root must agree
// at a common commit sequence.
func TestFullCommitteeKillRestartConverges(t *testing.T) {
	const (
		killAt   = 8 * time.Second
		downtime = 1 * time.Second
		runFor   = 30 * time.Second
	)
	cluster, timeline := killRestartCluster(t, roundRobinFactory, 11)
	cluster.KillRestartAll(killAt, downtime)
	submitKVLoad(cluster, 25*time.Second)

	// Capture the pre-crash frontier just before the kill lands.
	var preKillOrdered types.Round
	cluster.Sim.After(killAt-time.Millisecond, func() {
		preKillOrdered = cluster.Engine(0).Committer().LastOrderedRound()
	})

	cluster.Start()
	cluster.Sim.RunFor(runFor)

	if got := cluster.Restarts(); got != 4 {
		t.Fatalf("restarts = %d, want 4", got)
	}
	if preKillOrdered < 20 {
		t.Fatalf("committee ordered only %d rounds before the kill; test lost its teeth", preKillOrdered)
	}
	restartNanos := (killAt + downtime).Nanoseconds()
	fresh := make(map[types.ValidatorID]int)
	for _, c := range *timeline {
		if c.at >= restartNanos {
			fresh[c.node]++
		}
	}
	for i := 0; i < 4; i++ {
		id := types.ValidatorID(i)
		st := cluster.Engine(id).Stats()
		if st.RejoinsCompleted == 0 {
			t.Fatalf("v%d never completed the rejoin handshake: %+v", i, st)
		}
		if fresh[id] == 0 {
			t.Fatalf("v%d delivered no fresh commits after the restart (pre-kill round %d, now at %d)",
				i, preKillOrdered, cluster.Engine(id).Committer().LastOrderedRound())
		}
		if got := cluster.Engine(id).Committer().LastOrderedRound(); got <= preKillOrdered {
			t.Fatalf("v%d wedged at round %d (pre-kill %d)", i, got, preKillOrdered)
		}
	}

	// Convergence: every executor chained the same state root at the lowest
	// commonly applied commit sequence — identical post-restart histories.
	minSeq := ^uint64(0)
	for i := 0; i < 4; i++ {
		if seq := cluster.Executor(types.ValidatorID(i)).AppliedSeq(); seq < minSeq {
			minSeq = seq
		}
	}
	if minSeq == 0 || minSeq == ^uint64(0) {
		t.Fatal("some executor applied nothing")
	}
	ref, ok := cluster.Executor(0).RootAt(minSeq)
	if !ok {
		t.Fatalf("v0 no longer retains root at seq %d", minSeq)
	}
	for i := 1; i < 4; i++ {
		root, ok := cluster.Executor(types.ValidatorID(i)).RootAt(minSeq)
		if !ok {
			t.Fatalf("v%d no longer retains root at seq %d (applied %d)",
				i, minSeq, cluster.Executor(types.ValidatorID(i)).AppliedSeq())
		}
		if root != ref {
			t.Fatalf("state roots diverged at seq %d: v0=%s v%d=%s", minSeq, ref, i, root)
		}
	}
}

// TestHammerHeadFullCommitteeKillRestartConverges runs the same correlated
// SIGKILL under the reputation scheduler, at the default GCDepth: each
// restarted validator first installs its own persisted checkpoint — which
// carries the scheduler's state, so the engine fast-forwards the schedule
// exactly as a live node would — then replays its WAL and rejoins. Liveness,
// state-root agreement AND leader-schedule agreement must all be
// re-established.
func TestHammerHeadFullCommitteeKillRestartConverges(t *testing.T) {
	const (
		killAt   = 8 * time.Second
		downtime = 1 * time.Second
	)
	cluster, timeline := killRestartCluster(t, hammerheadFactory(10), 13)
	cluster.KillRestartAll(killAt, downtime)
	submitKVLoad(cluster, 22*time.Second)
	cluster.Start()
	cluster.Sim.RunFor(28 * time.Second)

	restartNanos := (killAt + downtime).Nanoseconds()
	fresh := make(map[types.ValidatorID]int)
	for _, c := range *timeline {
		if c.at >= restartNanos {
			fresh[c.node]++
		}
	}
	for i := 0; i < 4; i++ {
		id := types.ValidatorID(i)
		if cluster.Engine(id).Stats().RejoinsCompleted == 0 {
			t.Fatalf("v%d never completed the rejoin handshake", i)
		}
		if fresh[id] == 0 {
			t.Fatalf("v%d delivered no fresh commits after the restart", i)
		}
	}
	minSeq := ^uint64(0)
	for i := 0; i < 4; i++ {
		if seq := cluster.Executor(types.ValidatorID(i)).AppliedSeq(); seq < minSeq {
			minSeq = seq
		}
	}
	if minSeq == 0 || minSeq == ^uint64(0) {
		t.Fatal("some executor applied nothing")
	}
	ref, ok := cluster.Executor(0).RootAt(minSeq)
	if !ok {
		t.Fatalf("v0 no longer retains root at seq %d", minSeq)
	}
	for i := 1; i < 4; i++ {
		if root, ok := cluster.Executor(types.ValidatorID(i)).RootAt(minSeq); !ok || root != ref {
			t.Fatalf("v%d root at seq %d = %s (ok=%v), want %s", i, minSeq, root, ok, ref)
		}
	}
	// Post-recovery schedule agreement: every rebuilt scheduler must resolve
	// the identical leader sequence over the retained window.
	minOrdered := cluster.Engine(0).Committer().LastOrderedRound()
	for i := 1; i < 4; i++ {
		if r := cluster.Engine(types.ValidatorID(i)).Committer().LastOrderedRound(); r < minOrdered {
			minOrdered = r
		}
	}
	for i := 1; i < 4; i++ {
		assertSchedulesAgree(t, cluster, 0, types.ValidatorID(i), minOrdered)
	}
}

// TestPartialKillRestartRejoinsLiveCommittee kills and restarts a single
// validator while the rest keep committing: the restarted validator must
// gather its rejoin quorum from the live majority, merge their frontier and
// catch back up — the handshake subsumes the old single-node recovery path.
func TestPartialKillRestartRejoinsLiveCommittee(t *testing.T) {
	cluster, timeline := killRestartCluster(t, roundRobinFactory, 17)
	cluster.KillRestart([]types.ValidatorID{3}, 6*time.Second, 2*time.Second)
	submitKVLoad(cluster, 20*time.Second)
	cluster.Start()
	cluster.Sim.RunFor(25 * time.Second)

	if got := cluster.Restarts(); got != 1 {
		t.Fatalf("restarts = %d, want 1", got)
	}
	st := cluster.Engine(3).Stats()
	if st.RejoinsCompleted == 0 {
		t.Fatalf("restarted validator never completed rejoin: %+v", st)
	}
	restartNanos := (8 * time.Second).Nanoseconds()
	var fresh int
	for _, c := range *timeline {
		if c.node == 3 && c.at >= restartNanos {
			fresh++
		}
	}
	if fresh == 0 {
		t.Fatal("restarted validator delivered no fresh commits")
	}
	obs := cluster.Engine(0).Committer().LastOrderedRound()
	rec := cluster.Engine(3).Committer().LastOrderedRound()
	if rec+20 < obs {
		t.Fatalf("restarted validator lags: round %d vs observer %d", rec, obs)
	}
}
