package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// LatencyModel produces one-way message delays between validators.
// Implementations must be deterministic given the rng.
type LatencyModel interface {
	// Delay returns the one-way latency for a message of size bytes from
	// validator from to validator to.
	Delay(from, to int, sizeBytes int, rng *rand.Rand) time.Duration
}

// Uniform is a flat network: every link has the same base one-way delay
// with +-Jitter fractional noise. Useful for unit tests and ablations.
type Uniform struct {
	Base   time.Duration
	Jitter float64 // fraction of Base, e.g. 0.1
}

var _ LatencyModel = Uniform{}

// Delay implements LatencyModel.
func (u Uniform) Delay(_, _ int, _ int, rng *rand.Rand) time.Duration {
	d := float64(u.Base)
	if u.Jitter > 0 {
		d *= 1 + u.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// RegionNames lists the 13 AWS regions of the paper's testbed, in the order
// used by the RTT matrix below.
var RegionNames = []string{
	"us-east-1", "us-west-2", "ca-central-1", "eu-central-1", "eu-west-1",
	"eu-west-2", "eu-west-3", "eu-north-1", "ap-south-1", "ap-southeast-1",
	"ap-southeast-2", "ap-northeast-1", "ap-northeast-2",
}

// regionRTTMillis is a symmetric inter-region round-trip-time matrix in
// milliseconds, assembled from public inter-region measurements. It
// substitutes for the paper's live AWS links (DESIGN.md §4): the experiments
// depend on the RTT *distribution* (a fast transatlantic core plus slow
// Asia-Pacific tails), not on exact values. Only the upper triangle is
// specified; the lower is mirrored, and the diagonal is intra-region.
var regionRTTMillis = [13][13]float64{
	//        use1 usw2  cac1  euc1  euw1  euw2  euw3  eun1  aps1  apse1 apse2 apne1 apne2
	/*use1*/ {1, 70, 15, 90, 75, 78, 82, 110, 190, 220, 200, 160, 180},
	/*usw2*/ {0, 1, 60, 150, 130, 140, 145, 170, 220, 170, 140, 100, 120},
	/*cac1*/ {0, 0, 1, 95, 80, 85, 90, 110, 200, 215, 210, 155, 175},
	/*euc1*/ {0, 0, 0, 1, 25, 15, 10, 25, 110, 160, 290, 230, 240},
	/*euw1*/ {0, 0, 0, 0, 1, 10, 18, 35, 125, 180, 280, 220, 230},
	/*euw2*/ {0, 0, 0, 0, 0, 1, 8, 28, 110, 170, 270, 215, 225},
	/*euw3*/ {0, 0, 0, 0, 0, 0, 1, 30, 105, 160, 280, 220, 235},
	/*eun1*/ {0, 0, 0, 0, 0, 0, 0, 1, 130, 180, 300, 250, 260},
	/*aps1*/ {0, 0, 0, 0, 0, 0, 0, 0, 1, 60, 150, 120, 130},
	/*apse1*/ {0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 95, 70, 75},
	/*apse2*/ {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 105, 135},
	/*apne1*/ {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 35},
	/*apne2*/ {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
}

// Geo models the paper's 13-region AWS deployment: one-way delay is half
// the inter-region RTT with fractional jitter, plus a serialization delay
// of size/Bandwidth (the paper's machines have 10 Gbps NICs).
type Geo struct {
	// RegionOf maps a validator index to a region index (0..12).
	RegionOf []int
	// Jitter is fractional noise on the propagation delay (e.g. 0.1).
	Jitter float64
	// BandwidthBytesPerSec is the per-message serialization rate; zero
	// disables the bandwidth term.
	BandwidthBytesPerSec float64
}

var _ LatencyModel = Geo{}

// NewGeo spreads n validators across the 13 regions round-robin ("as
// equally as possible", §5) with 10 Gbps links and 10% jitter.
func NewGeo(n int) Geo {
	regions := make([]int, n)
	for i := range regions {
		regions[i] = i % len(RegionNames)
	}
	return Geo{
		RegionOf:             regions,
		Jitter:               0.10,
		BandwidthBytesPerSec: 10e9 / 8,
	}
}

// RegionName returns the region label of a validator.
func (g Geo) RegionName(validator int) string {
	return RegionNames[g.RegionOf[validator]]
}

// RTT returns the modeled round-trip time between two validators.
func (g Geo) RTT(from, to int) time.Duration {
	a, b := g.RegionOf[from], g.RegionOf[to]
	if a > b {
		a, b = b, a
	}
	return time.Duration(regionRTTMillis[a][b] * float64(time.Millisecond))
}

// Delay implements LatencyModel.
func (g Geo) Delay(from, to int, sizeBytes int, rng *rand.Rand) time.Duration {
	if from >= len(g.RegionOf) || to >= len(g.RegionOf) {
		panic(fmt.Sprintf("simnet: validator %d/%d outside region map of %d", from, to, len(g.RegionOf)))
	}
	oneWay := float64(g.RTT(from, to)) / 2
	if g.Jitter > 0 {
		oneWay *= 1 + g.Jitter*(2*rng.Float64()-1)
	}
	if g.BandwidthBytesPerSec > 0 {
		oneWay += float64(sizeBytes) / g.BandwidthBytesPerSec * float64(time.Second)
	}
	return time.Duration(oneWay)
}
