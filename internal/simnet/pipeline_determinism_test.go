package simnet

import (
	"testing"
	"time"

	"hammerhead/internal/bullshark"
	"hammerhead/internal/core"
	"hammerhead/internal/crypto"
	"hammerhead/internal/dag"
	"hammerhead/internal/engine"
	"hammerhead/internal/leader"
	"hammerhead/internal/types"
)

// noBatches is an engine.BatchProvider returning empty headers.
type noBatches struct{}

func (noBatches) NextBatch(int64, int) *types.Batch { return nil }

// commitLog records sink deliveries in order.
type commitLog struct {
	subs []bullshark.CommittedSubDAG
}

func (l *commitLog) DeliverCommit(sub bullshark.CommittedSubDAG) { l.subs = append(l.subs, sub) }

func fastSimEngineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.VerifySignatures = false
	cfg.MinRoundDelay = 50 * time.Millisecond
	cfg.LeaderTimeout = 500 * time.Millisecond
	cfg.ResyncInterval = 200 * time.Millisecond
	return cfg
}

func hammerheadFactory(epochCommits int) SchedulerFactory {
	return func(committee *types.Committee, d *dag.DAG) (leader.Scheduler, error) {
		cfg := core.DefaultConfig()
		cfg.EpochCommits = epochCommits
		cfg.Seed = 1
		return core.NewManager(committee, d, cfg)
	}
}

// replayEngine feeds a recorded certificate-insertion trace into a fresh
// engine with the given pipeline depth and returns its commit stream.
func replayEngine(t *testing.T, committee *types.Committee, trace []*engine.Certificate, depth int) []bullshark.CommittedSubDAG {
	t.Helper()
	kp, err := crypto.NewKeyPair(crypto.Insecure{}, [32]byte{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSimEngineConfig()
	cfg.PipelineDepth = depth
	d := dag.New(committee)
	sched, err := hammerheadFactory(3)(committee, d)
	if err != nil {
		t.Fatal(err)
	}
	log := &commitLog{}
	eng, err := engine.New(engine.Params{
		Config:    cfg,
		Committee: committee,
		Self:      0,
		Keys:      kp,
		Batches:   noBatches{},
		Scheduler: sched,
		DAG:       d,
		Commits:   log,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cert := range trace {
		msg := &engine.Message{Kind: engine.KindCertificate, Cert: cert}
		eng.OnMessage(1, msg.Clone(), 0)
	}
	eng.Flush()
	eng.Close()
	return log.subs
}

func assertSameCommitStream(t *testing.T, label string, a, b []bullshark.CommittedSubDAG) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: commit counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Index != b[i].Index || a[i].Direct != b[i].Direct ||
			a[i].Anchor.Digest() != b[i].Anchor.Digest() ||
			len(a[i].Vertices) != len(b[i].Vertices) {
			t.Fatalf("%s: commit %d differs: (idx=%d r=%d src=%s |%d| direct=%v) vs (idx=%d r=%d src=%s |%d| direct=%v)",
				label, i,
				a[i].Index, a[i].Anchor.Round, a[i].Anchor.Source, len(a[i].Vertices), a[i].Direct,
				b[i].Index, b[i].Anchor.Round, b[i].Anchor.Source, len(b[i].Vertices), b[i].Direct)
		}
		for j := range a[i].Vertices {
			if a[i].Vertices[j].Digest() != b[i].Vertices[j].Digest() {
				t.Fatalf("%s: commit %d vertex %d differs", label, i, j)
			}
		}
	}
}

// TestPipelinedOrderingMatchesSerial is the tentpole's determinism proof on
// a realistic trace: a simulated HammerHead committee (schedule switches
// every 3 commits, one validator slowed, one crash/recovery) runs for 20
// virtual seconds while validator 0's certificate-insertion sequence is
// recorded. Replaying that sequence into a fresh serial engine and a fresh
// pipelined engine (real order-stage goroutine) must reproduce validator
// 0's live commit stream byte-for-byte in both cases.
func TestPipelinedOrderingMatchesSerial(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	var live []bullshark.CommittedSubDAG
	cluster, err := NewCluster(ClusterConfig{
		Committee:    committee,
		Engine:       fastSimEngineConfig(),
		Latency:      Uniform{Base: 30 * time.Millisecond, Jitter: 0.2},
		NewScheduler: hammerheadFactory(3),
		Seed:         7,
		OnCommit: func(node types.ValidatorID, sub bullshark.CommittedSubDAG, _ int64) {
			if node == 0 {
				live = append(live, sub)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace []*engine.Certificate
	cluster.insertTap = func(node types.ValidatorID, cert *engine.Certificate) {
		if node == 0 {
			// Clone at insertion time: the engine mutates payload state later.
			trace = append(trace, (&engine.Message{Kind: engine.KindCertificate, Cert: cert}).Clone().Cert)
		}
	}
	cluster.SlowDown(2, 4, 5*time.Second, 10*time.Second)
	cluster.CrashAt(3, 8*time.Second)
	cluster.Recover(3, 14*time.Second)

	cluster.Start()
	cluster.Sim.RunFor(20 * time.Second)

	if len(live) < 10 || len(trace) < 40 {
		t.Fatalf("trace too small to be meaningful: %d commits, %d certs", len(live), len(trace))
	}
	serial := replayEngine(t, committee, trace, 0)
	pipelined := replayEngine(t, committee, trace, 8)
	assertSameCommitStream(t, "serial-vs-live", live, serial)
	assertSameCommitStream(t, "pipelined-vs-serial", serial, pipelined)
}

// TestGhostParentChurnKeepsPendingBounded is the long-running churn test:
// one validator spams quorum-certified ghost-parent certificates (the
// pending-leak vector) while another corrupts its signatures
// (CorruptSignatures-style traffic the pre-verify stage must shed), and the
// committee keeps running. Before the pending-state GC fix, every honest
// engine accumulated one pending entry per forgery, forever; now the maps
// stay bounded by the GC retention window while consensus keeps committing.
func TestGhostParentChurnKeepsPendingBounded(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.VerifySignatures = true // authenticated pipeline: Ed25519 + pre-verify
	cfg.MinRoundDelay = 50 * time.Millisecond
	cfg.LeaderTimeout = 400 * time.Millisecond
	cfg.ResyncInterval = 200 * time.Millisecond
	cfg.GCDepth = 8
	cfg.GCEvery = 4
	cluster, err := NewCluster(ClusterConfig{
		Committee:    committee,
		Engine:       cfg,
		Latency:      Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler: hammerheadFactory(10),
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	const forgeEvery = 150 * time.Millisecond
	cluster.ForgeGhostCerts(3, 2*time.Second, forgeEvery)
	cluster.CorruptSignatures(2, 10*time.Second)

	cluster.Start()
	runFor := 30 * time.Second
	cluster.Sim.RunFor(runFor)

	forged := int((runFor - 2*time.Second) / forgeEvery)
	if forged < 150 {
		t.Fatalf("expected >= 150 forgeries, got %d; test lost its teeth", forged)
	}
	for _, id := range []types.ValidatorID{0, 1} {
		eng := cluster.Engine(id)
		pending, missing, requested := eng.SyncBacklog()
		// The retention window is GCDepth rounds plus commit/GC slack; at
		// ~2 forgeries per round that is well under a quarter of the total
		// forged volume. Without the GC fix all ~forged entries survive.
		bound := forged / 4
		if pending > bound || missing > bound || requested > bound {
			t.Fatalf("v%d pending state unbounded: (%d,%d,%d) after %d forgeries, want <= %d",
				id, pending, missing, requested, forged, bound)
		}
		if last := eng.Committer().LastOrderedRound(); last < 40 {
			t.Fatalf("v%d consensus stalled under churn: last ordered round %d", id, last)
		}
	}
	if cluster.PreVerifyDropped() == 0 {
		t.Fatal("corrupted-signature traffic must be shed by pre-verify")
	}
}

// TestCatchUpUnderLoadConverges: a validator that was down while a loaded
// committee advanced hundreds of rounds must range-sync the gap and
// converge back to the frontier — the commit-path burst the engine pipeline
// absorbs on real nodes, exercised here over the same serial-equivalent
// engine code in virtual time.
func TestCatchUpUnderLoadConverges(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSimEngineConfig()
	cfg.MinRoundDelay = 30 * time.Millisecond
	cfg.LeaderTimeout = 300 * time.Millisecond
	cfg.ResyncInterval = 150 * time.Millisecond
	cfg.GCDepth = 1024 // peers must retain the absentee's gap
	cluster, err := NewCluster(ClusterConfig{
		Committee:    committee,
		Engine:       cfg,
		Latency:      Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler: hammerheadFactory(10),
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.CrashAt(3, 1*time.Second)
	cluster.Recover(3, 15*time.Second)

	// Open-loop load on the live validators for the whole run.
	var tick func()
	seq := uint64(0)
	tick = func() {
		if cluster.Sim.Now() >= (30 * time.Second).Nanoseconds() {
			return
		}
		seq++
		_ = cluster.SubmitTx(types.ValidatorID(seq%3), types.Transaction{ID: seq})
		cluster.Sim.After(5*time.Millisecond, tick)
	}
	cluster.Sim.After(5*time.Millisecond, tick)

	cluster.Start()
	cluster.Sim.RunFor(30 * time.Second)

	obs := cluster.Engine(0).Committer().LastOrderedRound()
	rec := cluster.Engine(3).Committer().LastOrderedRound()
	if obs < 100 {
		t.Fatalf("committee made too little progress: observer at round %d", obs)
	}
	if rec+40 < obs {
		t.Fatalf("recovered validator did not catch up: at round %d vs observer %d", rec, obs)
	}
	if p, m, r := cluster.Engine(3).SyncBacklog(); p > 256 || m > 256 || r > 256 {
		t.Fatalf("catch-up left unbounded pending state: (%d,%d,%d)", p, m, r)
	}
}
