package simnet

import (
	"testing"
	"time"

	"hammerhead/internal/bullshark"
	"hammerhead/internal/core"
	"hammerhead/internal/crypto"
	"hammerhead/internal/dag"
	"hammerhead/internal/engine"
	"hammerhead/internal/execution"
	"hammerhead/internal/leader"
	"hammerhead/internal/types"
)

// noBatches is an engine.BatchProvider returning empty headers.
type noBatches struct{}

func (noBatches) NextBatch(int64, int) *types.Batch { return nil }

// commitLog records sink deliveries in order.
type commitLog struct {
	subs []bullshark.CommittedSubDAG
}

func (l *commitLog) DeliverCommit(sub bullshark.CommittedSubDAG) { l.subs = append(l.subs, sub) }

func fastSimEngineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.VerifySignatures = false
	cfg.MinRoundDelay = 50 * time.Millisecond
	cfg.LeaderTimeout = 500 * time.Millisecond
	cfg.ResyncInterval = 200 * time.Millisecond
	return cfg
}

func hammerheadFactory(epochCommits int) SchedulerFactory {
	return func(committee *types.Committee, d *dag.DAG) (leader.Scheduler, error) {
		cfg := core.DefaultConfig()
		cfg.EpochCommits = epochCommits
		cfg.Seed = 1
		return core.NewManager(committee, d, cfg)
	}
}

// replayEngine feeds a recorded certificate-insertion trace into a fresh
// engine with the given pipeline depth, an executor hanging off the commit
// sink (applied inline for serial engines, from the order-stage goroutine
// for pipelined ones), and returns the commit stream plus the executor.
func replayEngine(t *testing.T, committee *types.Committee, trace []*engine.Certificate, depth int) ([]bullshark.CommittedSubDAG, *execution.Executor) {
	t.Helper()
	kp, err := crypto.NewKeyPair(crypto.Insecure{}, [32]byte{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSimEngineConfig()
	cfg.PipelineDepth = depth
	d := dag.New(committee)
	sched, err := hammerheadFactory(3)(committee, d)
	if err != nil {
		t.Fatal(err)
	}
	log := &commitLog{}
	exec := execution.NewExecutor(execution.NewKVState(), execution.Config{CheckpointInterval: 5})
	eng, err := engine.New(engine.Params{
		Config:    cfg,
		Committee: committee,
		Self:      0,
		Keys:      kp,
		Batches:   noBatches{},
		Scheduler: sched,
		DAG:       d,
		Commits: engine.CommitSinkFunc(func(sub bullshark.CommittedSubDAG) {
			exec.ApplyCommit(sub)
			log.subs = append(log.subs, sub)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cert := range trace {
		msg := &engine.Message{Kind: engine.KindCertificate, Cert: cert}
		eng.OnMessage(1, msg.Clone(), 0)
	}
	eng.Flush()
	eng.Close()
	return log.subs, exec
}

func assertSameCommitStream(t *testing.T, label string, a, b []bullshark.CommittedSubDAG) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: commit counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Index != b[i].Index || a[i].Direct != b[i].Direct ||
			a[i].Anchor.Digest() != b[i].Anchor.Digest() ||
			len(a[i].Vertices) != len(b[i].Vertices) {
			t.Fatalf("%s: commit %d differs: (idx=%d r=%d src=%s |%d| direct=%v) vs (idx=%d r=%d src=%s |%d| direct=%v)",
				label, i,
				a[i].Index, a[i].Anchor.Round, a[i].Anchor.Source, len(a[i].Vertices), a[i].Direct,
				b[i].Index, b[i].Anchor.Round, b[i].Anchor.Source, len(b[i].Vertices), b[i].Direct)
		}
		for j := range a[i].Vertices {
			if a[i].Vertices[j].Digest() != b[i].Vertices[j].Digest() {
				t.Fatalf("%s: commit %d vertex %d differs", label, i, j)
			}
		}
	}
}

// TestPipelinedOrderingMatchesSerial is the tentpole's determinism proof on
// a realistic trace: a simulated HammerHead committee (schedule switches
// every 3 commits, one validator slowed, one crash/recovery) runs for 20
// virtual seconds while validator 0's certificate-insertion sequence is
// recorded. Replaying that sequence into a fresh serial engine and a fresh
// pipelined engine (real order-stage goroutine) must reproduce validator
// 0's live commit stream byte-for-byte in both cases.
func TestPipelinedOrderingMatchesSerial(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	var live []bullshark.CommittedSubDAG
	cluster, err := NewCluster(ClusterConfig{
		Committee:    committee,
		Engine:       fastSimEngineConfig(),
		Latency:      Uniform{Base: 30 * time.Millisecond, Jitter: 0.2},
		NewScheduler: hammerheadFactory(3),
		Seed:         7,
		OnCommit: func(node types.ValidatorID, sub bullshark.CommittedSubDAG, _ int64) {
			if node == 0 {
				live = append(live, sub)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace []*engine.Certificate
	cluster.insertTap = func(node types.ValidatorID, cert *engine.Certificate) {
		if node == 0 {
			// Clone at insertion time: the engine mutates payload state later.
			trace = append(trace, (&engine.Message{Kind: engine.KindCertificate, Cert: cert}).Clone().Cert)
		}
	}
	cluster.SlowDown(2, 4, 5*time.Second, 10*time.Second)
	cluster.CrashAt(3, 8*time.Second)
	cluster.Recover(3, 14*time.Second)

	cluster.Start()
	cluster.Sim.RunFor(20 * time.Second)

	if len(live) < 10 || len(trace) < 40 {
		t.Fatalf("trace too small to be meaningful: %d commits, %d certs", len(live), len(trace))
	}
	serial, serialExec := replayEngine(t, committee, trace, 0)
	pipelined, pipelinedExec := replayEngine(t, committee, trace, 8)
	assertSameCommitStream(t, "serial-vs-live", live, serial)
	assertSameCommitStream(t, "pipelined-vs-serial", serial, pipelined)
	// Executor determinism on the same trace: identical commit streams must
	// chain to identical (seq, state root) regardless of which goroutine
	// applied them.
	if serialExec.AppliedSeq() != pipelinedExec.AppliedSeq() ||
		serialExec.StateRoot() != pipelinedExec.StateRoot() ||
		serialExec.StateDigest() != pipelinedExec.StateDigest() {
		t.Fatalf("executor state diverged: serial (%d, %s) vs pipelined (%d, %s)",
			serialExec.AppliedSeq(), serialExec.StateRoot(),
			pipelinedExec.AppliedSeq(), pipelinedExec.StateRoot())
	}
	if serialExec.AppliedSeq() == 0 {
		t.Fatal("executors applied nothing; determinism check is vacuous")
	}
}

// TestGhostParentChurnKeepsPendingBounded is the long-running churn test:
// one validator spams quorum-certified ghost-parent certificates (the
// pending-leak vector) while another corrupts its signatures
// (CorruptSignatures-style traffic the pre-verify stage must shed), and the
// committee keeps running. Before the pending-state GC fix, every honest
// engine accumulated one pending entry per forgery, forever; now the maps
// stay bounded by the GC retention window while consensus keeps committing.
func TestGhostParentChurnKeepsPendingBounded(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.VerifySignatures = true // authenticated pipeline: Ed25519 + pre-verify
	cfg.MinRoundDelay = 50 * time.Millisecond
	cfg.LeaderTimeout = 400 * time.Millisecond
	cfg.ResyncInterval = 200 * time.Millisecond
	cfg.GCDepth = 8
	cfg.GCEvery = 4
	cluster, err := NewCluster(ClusterConfig{
		Committee:    committee,
		Engine:       cfg,
		Latency:      Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler: hammerheadFactory(10),
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	const forgeEvery = 150 * time.Millisecond
	cluster.ForgeGhostCerts(3, 2*time.Second, forgeEvery)
	cluster.CorruptSignatures(2, 10*time.Second)

	cluster.Start()
	runFor := 30 * time.Second
	cluster.Sim.RunFor(runFor)

	forged := int((runFor - 2*time.Second) / forgeEvery)
	if forged < 150 {
		t.Fatalf("expected >= 150 forgeries, got %d; test lost its teeth", forged)
	}
	for _, id := range []types.ValidatorID{0, 1} {
		eng := cluster.Engine(id)
		pending, missing, requested := eng.SyncBacklog()
		// The retention window is GCDepth rounds plus commit/GC slack; at
		// ~2 forgeries per round that is well under a quarter of the total
		// forged volume. Without the GC fix all ~forged entries survive.
		bound := forged / 4
		if pending > bound || missing > bound || requested > bound {
			t.Fatalf("v%d pending state unbounded: (%d,%d,%d) after %d forgeries, want <= %d",
				id, pending, missing, requested, forged, bound)
		}
		if last := eng.Committer().LastOrderedRound(); last < 40 {
			t.Fatalf("v%d consensus stalled under churn: last ordered round %d", id, last)
		}
	}
	if cluster.PreVerifyDropped() == 0 {
		t.Fatal("corrupted-signature traffic must be shed by pre-verify")
	}
}

// Catch-up beyond the GC horizon is covered by TestSnapshotCatchUpConverges
// (snapshot_sync_test.go) at the DEFAULT GCDepth — the raised-GCDepthRounds
// workaround the pre-snapshot catch-up test needed is gone. Catch-up within
// the horizon (pure range sync) is exercised by the crash/recovery window of
// TestPipelinedOrderingMatchesSerial above and the engine's sync tests.
