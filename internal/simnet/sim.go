// Package simnet is a deterministic discrete-event simulator for
// HammerHead/Bullshark deployments. It substitutes for the paper's AWS
// testbed (DESIGN.md §4): validators run the exact production engine
// (internal/engine); only the transport, clock and fault injection are
// simulated. A 100-validator, multi-minute geo-distributed run executes in
// seconds of wall time and is perfectly reproducible from its seed.
package simnet

import (
	"container/heap"
	"math/rand"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  int64 // virtual nanos
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, insertion sequence); the sequence tie
// break keeps same-instant events FIFO and the run deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded virtual-time event loop. Not safe for
// concurrent use.
type Simulator struct {
	queue eventHeap
	now   int64
	seq   uint64
	rng   *rand.Rand

	processed uint64
}

// New creates a simulator with the given seed. Equal seeds produce
// bit-identical runs.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))} //nolint:gosec // deterministic by design
}

// Now returns the current virtual time in nanoseconds.
func (s *Simulator) Now() int64 { return s.now }

// Rand returns the simulator's deterministic RNG. All randomness in a run
// must come from here.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// After schedules fn at now+delay. Negative delays clamp to "immediately".
func (s *Simulator) After(delay time.Duration, fn func()) {
	at := s.now + delay.Nanoseconds()
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// Step runs the next event; it reports false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// RunUntil processes events until virtual time passes deadline (nanos) or
// the queue drains. Events scheduled exactly at the deadline still run.
func (s *Simulator) RunUntil(deadline int64) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances virtual time by d.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.now + d.Nanoseconds())
}

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// QueueLen returns the number of pending events.
func (s *Simulator) QueueLen() int { return len(s.queue) }
