package simnet

import (
	"fmt"
	"testing"
	"time"

	"hammerhead/internal/core"
	"hammerhead/internal/dag"
	"hammerhead/internal/engine"
	"hammerhead/internal/execution"
	"hammerhead/internal/leader"
	"hammerhead/internal/types"
)

// roundRobinFactory builds the static baseline scheduler. Both it and
// core.Manager support snapshot fast-forward — the reputation scheduler's
// state rides inside checkpoints and is restored before the jump.
func roundRobinFactory(committee *types.Committee, d *dag.DAG) (leader.Scheduler, error) {
	return leader.NewRoundRobin(committee, 1), nil
}

// assertSchedulesAgree compares two validators' leader sequences over the
// overlapping anchor-round window both schedulers retain — the paper's
// Schedule Agreement in executable form. A recovered validator whose restored
// schedule diverged from the live committee's fails here round by round.
func assertSchedulesAgree(t *testing.T, cluster *Cluster, a, b types.ValidatorID, to types.Round) {
	t.Helper()
	schedA := cluster.Engine(a).Scheduler()
	schedB := cluster.Engine(b).Scheduler()
	from := types.Round(2)
	for _, s := range []leader.Scheduler{schedA, schedB} {
		if m, ok := s.(*core.Manager); ok {
			// The schedule history resolves leaders back to its first retained
			// schedule (a restored node's history starts at the restore floor).
			if first := m.History().Schedules()[0].InitialRound(); first > from {
				from = first
			}
		}
	}
	if !from.IsAnchorRound() {
		from++
	}
	if from+10 > to {
		t.Fatalf("overlapping schedule window too narrow: from %d, to %d", from, to)
	}
	for r := from; r <= to; r += 2 {
		la, lb := schedA.LeaderAt(r), schedB.LeaderAt(r)
		if la != lb {
			t.Fatalf("schedules diverge at anchor round %d: v%d says %s, v%d says %s",
				r, a, la, b, lb)
		}
	}
}

// TestSnapshotCatchUpConverges is the acceptance test for snapshot
// state-sync: a validator partitioned far past the GC horizon — with the
// DEFAULT GCDepth, so its missing certificate history is genuinely pruned
// everywhere — rejoins via a chunked snapshot install and converges to the
// same chained state root as the live validators at a common commit
// sequence. This replaces the old catch-up test's raised-GCDepthRounds
// workaround (peers no longer need to retain the absentee's gap).
func TestSnapshotCatchUpConverges(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSimEngineConfig()
	cfg.MinRoundDelay = 30 * time.Millisecond
	cfg.LeaderTimeout = 300 * time.Millisecond
	cfg.ResyncInterval = 150 * time.Millisecond
	cfg.SnapshotChunkBytes = 2048 // force the multi-chunk resume path
	if cfg.GCDepth != engine.DefaultConfig().GCDepth {
		t.Fatalf("test must run at the default GCDepth, got %d", cfg.GCDepth)
	}
	cluster, err := NewCluster(ClusterConfig{
		Committee:          committee,
		Engine:             cfg,
		Latency:            Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler:       roundRobinFactory,
		Execution:          true,
		CheckpointInterval: 8,
		Seed:               5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.CrashAt(3, 1*time.Second)
	cluster.Recover(3, 15*time.Second)

	// Open-loop KV load on the live validators for most of the run, so the
	// ledger state is non-trivial and roots have teeth.
	var tick func()
	seq := uint64(0)
	tick = func() {
		if cluster.Sim.Now() >= (28 * time.Second).Nanoseconds() {
			return
		}
		seq++
		key := []byte(fmt.Sprintf("k%03d", seq%257))
		val := []byte(fmt.Sprintf("v%d", seq))
		_ = cluster.SubmitTx(types.ValidatorID(seq%3), types.Transaction{
			ID:      seq,
			Payload: execution.PutOp(key, val),
		})
		cluster.Sim.After(5*time.Millisecond, tick)
	}
	cluster.Sim.After(5*time.Millisecond, tick)

	cluster.Start()
	cluster.Sim.RunFor(35 * time.Second)

	obs := cluster.Engine(0).Committer().LastOrderedRound()
	rec := cluster.Engine(3).Committer().LastOrderedRound()
	if obs < 150 {
		t.Fatalf("committee made too little progress: observer at round %d", obs)
	}
	// The outage must genuinely exceed the GC horizon, or this test lost its
	// teeth (certificate sync alone would have recovered it).
	if floor := cluster.Engine(0).DAG().PrunedTo(); floor < 100 {
		t.Fatalf("live validators pruned only to %d; outage not beyond the horizon", floor)
	}
	st := cluster.Engine(3).Stats()
	if st.SnapshotInstalls < 1 {
		t.Fatalf("recovered validator never installed a snapshot: %+v", st)
	}
	if st.SnapshotRequests < 2 {
		t.Fatalf("snapshot fetch was not chunked: %d requests", st.SnapshotRequests)
	}
	if rec+40 < obs {
		t.Fatalf("recovered validator did not catch up: at round %d vs observer %d", rec, obs)
	}

	// Convergence: the recovered executor's chained root equals every live
	// validator's root at the same commit sequence — identical applied
	// commit streams, hence identical KV ledgers.
	recExec := cluster.Executor(3)
	recSeq, recRoot := recExec.AppliedSeq(), recExec.StateRoot()
	if recSeq == 0 {
		t.Fatal("recovered executor applied nothing")
	}
	for id := types.ValidatorID(0); id < 3; id++ {
		liveRoot, ok := cluster.Executor(id).RootAt(recSeq)
		if !ok {
			t.Fatalf("v%d no longer retains root at seq %d (live at %d)", id, recSeq, cluster.Executor(id).AppliedSeq())
		}
		if liveRoot != recRoot {
			t.Fatalf("state roots diverged at seq %d: v3=%s v%d=%s", recSeq, recRoot, id, liveRoot)
		}
	}
	if p, m, r := cluster.Engine(3).SyncBacklog(); p > 256 || m > 256 || r > 256 {
		t.Fatalf("catch-up left unbounded pending state: (%d,%d,%d)", p, m, r)
	}
}

// TestHammerHeadSnapshotCatchUpConverges is the reputation-scheduler twin of
// TestSnapshotCatchUpConverges, and the acceptance test for scheduler state
// riding in checkpoints: a HammerHead validator partitioned past the default
// GC horizon must recover via a chunked snapshot install — the snapshot
// carries core.ManagerState, the engine restores it before fast-forwarding —
// and converge to both the same chained state root AND the same leader
// schedule as the live committee. Before this, the engine refused to request
// snapshots under HammerHead and the validator stayed behind forever.
func TestHammerHeadSnapshotCatchUpConverges(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSimEngineConfig()
	cfg.MinRoundDelay = 30 * time.Millisecond
	cfg.LeaderTimeout = 300 * time.Millisecond
	cfg.ResyncInterval = 150 * time.Millisecond
	cfg.SnapshotChunkBytes = 2048 // force the multi-chunk resume path
	if cfg.GCDepth != engine.DefaultConfig().GCDepth {
		t.Fatalf("test must run at the default GCDepth, got %d", cfg.GCDepth)
	}
	cluster, err := NewCluster(ClusterConfig{
		Committee:          committee,
		Engine:             cfg,
		Latency:            Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler:       hammerheadFactory(10),
		Execution:          true,
		CheckpointInterval: 8,
		Seed:               9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.CrashAt(3, 1*time.Second)
	cluster.Recover(3, 15*time.Second)

	var tick func()
	seq := uint64(0)
	tick = func() {
		if cluster.Sim.Now() >= (28 * time.Second).Nanoseconds() {
			return
		}
		seq++
		key := []byte(fmt.Sprintf("k%03d", seq%257))
		val := []byte(fmt.Sprintf("v%d", seq))
		_ = cluster.SubmitTx(types.ValidatorID(seq%3), types.Transaction{
			ID:      seq,
			Payload: execution.PutOp(key, val),
		})
		cluster.Sim.After(5*time.Millisecond, tick)
	}
	cluster.Sim.After(5*time.Millisecond, tick)

	cluster.Start()
	cluster.Sim.RunFor(35 * time.Second)

	obs := cluster.Engine(0).Committer().LastOrderedRound()
	rec := cluster.Engine(3).Committer().LastOrderedRound()
	if obs < 150 {
		t.Fatalf("committee made too little progress: observer at round %d", obs)
	}
	if floor := cluster.Engine(0).DAG().PrunedTo(); floor < 100 {
		t.Fatalf("live validators pruned only to %d; outage not beyond the horizon", floor)
	}
	st := cluster.Engine(3).Stats()
	if st.SnapshotInstalls < 1 {
		t.Fatalf("recovered HammerHead validator never installed a snapshot: %+v", st)
	}
	if st.SnapshotInstallFailures != 0 {
		t.Fatalf("snapshot installs failed (missing scheduler state?): %+v", st)
	}
	if rec+40 < obs {
		t.Fatalf("recovered validator did not catch up: at round %d vs observer %d", rec, obs)
	}

	// The committee must actually have switched schedules, or the restore had
	// nothing to prove.
	liveSched, ok := cluster.Engine(0).Scheduler().(*core.Manager)
	if !ok {
		t.Fatal("expected a core.Manager scheduler")
	}
	if liveSched.SwitchCount() == 0 {
		t.Fatal("committee never switched schedules; test lost its teeth")
	}

	// Root convergence: identical applied commit streams.
	recExec := cluster.Executor(3)
	recSeq, recRoot := recExec.AppliedSeq(), recExec.StateRoot()
	if recSeq == 0 {
		t.Fatal("recovered executor applied nothing")
	}
	for id := types.ValidatorID(0); id < 3; id++ {
		liveRoot, ok := cluster.Executor(id).RootAt(recSeq)
		if !ok {
			t.Fatalf("v%d no longer retains root at seq %d (live at %d)", id, recSeq, cluster.Executor(id).AppliedSeq())
		}
		if liveRoot != recRoot {
			t.Fatalf("state roots diverged at seq %d: v3=%s v%d=%s", recSeq, recRoot, id, liveRoot)
		}
	}
	// Schedule convergence: the restored reputation schedule is bit-equal to
	// the live committee's over the whole retained window.
	for id := types.ValidatorID(0); id < 3; id++ {
		assertSchedulesAgree(t, cluster, 3, id, rec)
	}
}
