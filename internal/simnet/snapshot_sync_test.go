package simnet

import (
	"fmt"
	"testing"
	"time"

	"hammerhead/internal/dag"
	"hammerhead/internal/engine"
	"hammerhead/internal/execution"
	"hammerhead/internal/leader"
	"hammerhead/internal/types"
)

// roundRobinFactory builds the static baseline scheduler — the one that
// supports snapshot fast-forward (core.Manager's reputation state is not
// carried in snapshots yet; see ROADMAP).
func roundRobinFactory(committee *types.Committee, d *dag.DAG) (leader.Scheduler, error) {
	return leader.NewRoundRobin(committee, 1), nil
}

// TestSnapshotCatchUpConverges is the acceptance test for snapshot
// state-sync: a validator partitioned far past the GC horizon — with the
// DEFAULT GCDepth, so its missing certificate history is genuinely pruned
// everywhere — rejoins via a chunked snapshot install and converges to the
// same chained state root as the live validators at a common commit
// sequence. This replaces the old catch-up test's raised-GCDepthRounds
// workaround (peers no longer need to retain the absentee's gap).
func TestSnapshotCatchUpConverges(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSimEngineConfig()
	cfg.MinRoundDelay = 30 * time.Millisecond
	cfg.LeaderTimeout = 300 * time.Millisecond
	cfg.ResyncInterval = 150 * time.Millisecond
	cfg.SnapshotChunkBytes = 2048 // force the multi-chunk resume path
	if cfg.GCDepth != engine.DefaultConfig().GCDepth {
		t.Fatalf("test must run at the default GCDepth, got %d", cfg.GCDepth)
	}
	cluster, err := NewCluster(ClusterConfig{
		Committee:          committee,
		Engine:             cfg,
		Latency:            Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler:       roundRobinFactory,
		Execution:          true,
		CheckpointInterval: 8,
		Seed:               5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.CrashAt(3, 1*time.Second)
	cluster.Recover(3, 15*time.Second)

	// Open-loop KV load on the live validators for most of the run, so the
	// ledger state is non-trivial and roots have teeth.
	var tick func()
	seq := uint64(0)
	tick = func() {
		if cluster.Sim.Now() >= (28 * time.Second).Nanoseconds() {
			return
		}
		seq++
		key := []byte(fmt.Sprintf("k%03d", seq%257))
		val := []byte(fmt.Sprintf("v%d", seq))
		_ = cluster.SubmitTx(types.ValidatorID(seq%3), types.Transaction{
			ID:      seq,
			Payload: execution.PutOp(key, val),
		})
		cluster.Sim.After(5*time.Millisecond, tick)
	}
	cluster.Sim.After(5*time.Millisecond, tick)

	cluster.Start()
	cluster.Sim.RunFor(35 * time.Second)

	obs := cluster.Engine(0).Committer().LastOrderedRound()
	rec := cluster.Engine(3).Committer().LastOrderedRound()
	if obs < 150 {
		t.Fatalf("committee made too little progress: observer at round %d", obs)
	}
	// The outage must genuinely exceed the GC horizon, or this test lost its
	// teeth (certificate sync alone would have recovered it).
	if floor := cluster.Engine(0).DAG().PrunedTo(); floor < 100 {
		t.Fatalf("live validators pruned only to %d; outage not beyond the horizon", floor)
	}
	st := cluster.Engine(3).Stats()
	if st.SnapshotInstalls < 1 {
		t.Fatalf("recovered validator never installed a snapshot: %+v", st)
	}
	if st.SnapshotRequests < 2 {
		t.Fatalf("snapshot fetch was not chunked: %d requests", st.SnapshotRequests)
	}
	if rec+40 < obs {
		t.Fatalf("recovered validator did not catch up: at round %d vs observer %d", rec, obs)
	}

	// Convergence: the recovered executor's chained root equals every live
	// validator's root at the same commit sequence — identical applied
	// commit streams, hence identical KV ledgers.
	recExec := cluster.Executor(3)
	recSeq, recRoot := recExec.AppliedSeq(), recExec.StateRoot()
	if recSeq == 0 {
		t.Fatal("recovered executor applied nothing")
	}
	for id := types.ValidatorID(0); id < 3; id++ {
		liveRoot, ok := cluster.Executor(id).RootAt(recSeq)
		if !ok {
			t.Fatalf("v%d no longer retains root at seq %d (live at %d)", id, recSeq, cluster.Executor(id).AppliedSeq())
		}
		if liveRoot != recRoot {
			t.Fatalf("state roots diverged at seq %d: v3=%s v%d=%s", recSeq, recRoot, id, liveRoot)
		}
	}
	if p, m, r := cluster.Engine(3).SyncBacklog(); p > 256 || m > 256 || r > 256 {
		t.Fatalf("catch-up left unbounded pending state: (%d,%d,%d)", p, m, r)
	}
}

// TestSnapshotCatchUpHammerHeadStaysWithinHorizonGuard documents the current
// limitation: with the HammerHead scheduler (no snapshot fast-forward), a
// beyond-horizon validator must NOT install snapshots — its reputation
// schedule could not follow the jump and ordering would diverge. The engine
// gates requesting on the scheduler, so the recovered validator simply stays
// behind rather than corrupting itself.
func TestSnapshotCatchUpHammerHeadStaysWithinHorizonGuard(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSimEngineConfig()
	cfg.MinRoundDelay = 30 * time.Millisecond
	cluster, err := NewCluster(ClusterConfig{
		Committee:          committee,
		Engine:             cfg,
		Latency:            Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler:       hammerheadFactory(10),
		Execution:          true,
		CheckpointInterval: 8,
		Seed:               9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.CrashAt(3, 1*time.Second)
	cluster.Recover(3, 12*time.Second)
	cluster.Start()
	cluster.Sim.RunFor(18 * time.Second)

	if st := cluster.Engine(3).Stats(); st.SnapshotRequests != 0 || st.SnapshotInstalls != 0 {
		t.Fatalf("HammerHead-scheduled engine must not request snapshots: %+v", st)
	}
	// Live validators still serve and checkpoint, though.
	if cluster.Executor(0).Checkpoints() == 0 {
		t.Fatal("live validators must keep cutting checkpoints")
	}
}
