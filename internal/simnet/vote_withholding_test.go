package simnet

import (
	"testing"
	"time"

	"hammerhead/internal/types"
)

// countBySource tallies, on observer's DAG, how many vertices each validator
// certified across rounds (1, highest].
func countBySource(c *Cluster, observer types.ValidatorID) map[types.ValidatorID]int {
	d := c.Engine(observer).DAG()
	counts := make(map[types.ValidatorID]int)
	for r := types.Round(2); r <= d.HighestRound(); r++ {
		for _, v := range d.RoundVertices(r) {
			counts[v.Source]++
		}
	}
	return counts
}

// TestWithholdVotesStarvesTargetedProposer pins the vote-withholding fault
// variant: with a 4-committee (quorum 3 = self + 2 peers), two validators
// silently refusing to vote for validator 0's headers leave it at most 2
// votes, so none of its vertices ever certify — even though its headers
// reach the whole committee and the withholders look perfectly healthy.
func TestWithholdVotesStarvesTargetedProposer(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig{
		Committee:    committee,
		Engine:       fastSimEngineConfig(),
		Latency:      Uniform{Base: 10 * time.Millisecond, Jitter: 0.1},
		NewScheduler: roundRobinFactory,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const victim = types.ValidatorID(0)
	cluster.WithholdVotes(2, []types.ValidatorID{victim}, time.Second)
	cluster.WithholdVotes(3, []types.ValidatorID{victim}, time.Second)

	cluster.Start()
	cluster.Sim.RunFor(20 * time.Second)

	counts := countBySource(cluster, 1)
	// The committee must keep certifying and ordering around the starved
	// proposer (Bullshark tolerates f=1 silent member).
	for _, id := range []types.ValidatorID{1, 2, 3} {
		if counts[id] < 10 {
			t.Fatalf("validator %s certified only %d vertices; committee did not progress (counts=%v)", id, counts[id], counts)
		}
	}
	if got := cluster.Engine(1).Committer().LastOrderedRound(); got < 10 {
		t.Fatalf("committee ordered only %d rounds around the starved proposer", got)
	}
	// The victim certified essentially nothing after the withholding kicked
	// in: allow only the handful of rounds before t=1s.
	if counts[victim] > 2*counts[1]/10 {
		t.Fatalf("victim certified %d vertices despite vote withholding (healthy peer: %d)", counts[victim], counts[1])
	}
}

// TestWithholdVotesBelowThresholdIsHarmless is the control: a single
// vote-withholder cannot push the victim below quorum (self + 2 remaining
// voters = 3), so certification proceeds for everyone.
func TestWithholdVotesBelowThresholdIsHarmless(t *testing.T) {
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig{
		Committee:    committee,
		Engine:       fastSimEngineConfig(),
		Latency:      Uniform{Base: 10 * time.Millisecond, Jitter: 0.1},
		NewScheduler: roundRobinFactory,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.WithholdVotes(3, []types.ValidatorID{0}, 0)

	cluster.Start()
	cluster.Sim.RunFor(20 * time.Second)

	counts := countBySource(cluster, 1)
	for id, n := range map[types.ValidatorID]int{0: counts[0], 1: counts[1], 2: counts[2], 3: counts[3]} {
		if n < 10 {
			t.Fatalf("validator %s certified only %d vertices under a single withholder (counts=%v)", id, n, counts)
		}
	}
}
