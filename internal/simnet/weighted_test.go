package simnet_test

import (
	"testing"
	"time"

	"hammerhead/internal/core"
	"hammerhead/internal/simnet"
	"hammerhead/internal/types"
)

// TestWeightedStakeCommittee runs the full stack over a heterogeneous-stake
// committee — the configuration that motivates the paper's stake-weighted
// model ("validators vary in stake and thus leader election frequency") —
// and checks that leadership frequency tracks stake and that HammerHead's
// swap respects the stake budget when the heavy validator crashes.
func TestWeightedStakeCommittee(t *testing.T) {
	// Total stake 12, f = 3: v0 holds 4 (a "major validator"), the rest 1.
	auths := []types.Authority{
		{ID: 0, Stake: 4}, {ID: 1, Stake: 1}, {ID: 2, Stake: 1}, {ID: 3, Stake: 1},
		{ID: 4, Stake: 1}, {ID: 5, Stake: 1}, {ID: 6, Stake: 1}, {ID: 7, Stake: 1},
		{ID: 8, Stake: 1},
	}
	committee, err := types.NewCommittee(auths)
	if err != nil {
		t.Fatal(err)
	}
	hh := core.DefaultConfig()
	hh.EpochCommits = 5
	rec := newCommitRecorder(0)
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		Committee:    committee,
		Engine:       fastEngineConfig(),
		Latency:      simnet.Uniform{Base: 20 * time.Millisecond, Jitter: 0.1},
		NewScheduler: hammerheadFactory(hh),
		OnCommit:     rec.hook,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	cluster.Sim.RunFor(20 * time.Second)

	// Stake-proportional leadership: v0 must lead ≈4x as often as a 1-stake
	// validator across the initial schedule's slot cycle.
	m := cluster.Engine(0).Scheduler().(*core.Manager)
	slots := m.History().Schedules()[0].SlotsOf()
	if slots[0] != 4 {
		t.Fatalf("heavy validator holds %d slots per cycle, want 4", slots[0])
	}
	if len(rec.anchors[0]) < 5 {
		t.Fatalf("only %d commits", len(rec.anchors[0]))
	}

	// Phase 2: crash the heavy validator mid-run and let the schedule react —
	// the §1 "major validator under maintenance" story.
	cluster.CrashAt(0, 20*time.Second)
	cluster.Sim.RunFor(40 * time.Second)

	obs := cluster.Engine(1)
	m1 := obs.Scheduler().(*core.Manager)
	if m1.SwitchCount() == 0 {
		t.Fatal("no schedule switch after the heavy validator crashed")
	}
	last := m1.Decisions()[m1.SwitchCount()-1]
	// The swap budget is f = 3 < stake(v0) = 4: the heavy validator does NOT
	// fit the B budget (the paper's "at most f validators by stake"), so its
	// slots cannot be reassigned — the algorithmic limit of reputation
	// swaps for overweight validators.
	var badStake types.Stake
	for _, id := range last.Bad {
		badStake += committee.Stake(id)
		if id == 0 {
			t.Fatalf("v0 (stake 4) exceeds the swap budget f=3 and must not be in B, got %v", last.Bad)
		}
	}
	if badStake > committee.MaxFaultyStake() {
		t.Fatalf("B stake %d exceeds budget %d", badStake, committee.MaxFaultyStake())
	}
	// Liveness continues regardless: remaining validators keep committing
	// (v0's anchor rounds time out, bounded by the leader timeout).
	late := len(rec.anchors[1])
	if late < 10 {
		t.Fatalf("only %d commits with the heavy validator down", late)
	}
	// Safety throughout.
	for i := 2; i < 9; i++ {
		if !prefixConsistent(rec.anchors[1], rec.anchors[types.ValidatorID(i)]) {
			t.Fatalf("weighted committee commits diverge (v%d)", i)
		}
	}
}
