package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"hammerhead/internal/engine"
)

// frameLegacyBody wraps a pre-upgrade record body in the WAL's length+CRC
// framing, exactly as old binaries wrote it.
func frameLegacyBody(t *testing.T, w *bufio.Writer, body []byte) {
	t.Helper()
	var header [8]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(header[4:], crc32.Checksum(body, _crcTable))
	if _, err := w.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(body); err != nil {
		t.Fatal(err)
	}
}

// writeLegacyWAL builds a pre-upgrade log: a bare gob certificate record
// (the oldest generation), then V1 gob-envelope cert and proposal records.
func writeLegacyWAL(t *testing.T, path string, bare *engine.Certificate, env *engine.Certificate, prop *engine.Header) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)

	var bareBody bytes.Buffer
	if err := gob.NewEncoder(&bareBody).Encode(bare); err != nil {
		t.Fatal(err)
	}
	frameLegacyBody(t, w, bareBody.Bytes())

	for _, rec := range []walRecord{{Cert: env}, {Proposal: prop}} {
		var body bytes.Buffer
		body.WriteByte(_recordV1)
		if err := gob.NewEncoder(&body).Encode(rec); err != nil {
			t.Fatal(err)
		}
		frameLegacyBody(t, w, body.Bytes())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyGobWALReplay pins the upgrade contract: a log written entirely by
// a pre-wire-codec binary (bare-cert and V1 gob-envelope records) replays
// losslessly on the current binary, and appending current-format records to
// it yields a mixed-generation log that still replays end to end.
func TestLegacyGobWALReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.log")
	bare, env := testCert(1, 0), testCert(2, 1)
	prop := &engine.Header{Round: 3, Source: 1, Signature: []byte("own-slot")}
	writeLegacyWAL(t, path, bare, env, prop)

	var certs []*engine.Certificate
	var props []*engine.Header
	valid, err := ReplayPrefixRecords(path, func(c *engine.Certificate) error {
		certs = append(certs, c)
		return nil
	}, func(h *engine.Header) error {
		props = append(props, h)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) != 2 || len(props) != 1 {
		t.Fatalf("replayed %d certs, %d proposals; want 2, 1", len(certs), len(props))
	}
	if certs[0].Digest() != bare.Digest() || certs[1].Digest() != env.Digest() {
		t.Fatal("legacy certificate digests changed across replay")
	}
	if props[0].Digest() != prop.Digest() {
		t.Fatal("legacy proposal digest changed across replay")
	}

	// Mixed-generation log: the current binary appends wire-codec records
	// after the legacy prefix, and a fresh replay sees all of them in order.
	w, err := OpenWALTrimmed(path, valid)
	if err != nil {
		t.Fatal(err)
	}
	newCert := testCert(4, 0)
	if err := w.Append(newCert); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 3 {
		t.Fatalf("mixed-generation replay recovered %d certs; want 3", len(got))
	}
	if got[2].Digest() != newCert.Digest() {
		t.Fatal("appended wire-codec certificate changed across replay")
	}

	// Compaction rewrites legacy records into the current format without
	// losing them.
	if err := Compact(path, 0); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 3 {
		t.Fatalf("post-compaction replay recovered %d certs; want 3", len(got))
	}
}
