package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hammerhead/internal/execution"
)

// SnapshotStore persists execution checkpoints as one file per snapshot
// under a directory, with atomic write-temp-rename publication and a
// retention knob. It implements execution.SnapshotStore; real nodes plug it
// into their executor so checkpoints survive restarts and can be served to
// state-syncing peers.
//
// File layout: checkpoint-<commitseq>.snap, body = 4-byte length + 4-byte
// CRC32C + the execution snapshot encoding (same framing discipline as the
// WAL). A corrupt file is skipped on load — the next older snapshot wins.
type SnapshotStore struct {
	mu     sync.Mutex
	dir    string
	retain int
}

var _ execution.SnapshotStore = (*SnapshotStore)(nil)

// DefaultSnapshotRetain is how many checkpoints are kept when the retention
// knob is zero: the latest to serve and one predecessor as a fallback
// against a torn latest.
const DefaultSnapshotRetain = 2

// NewSnapshotStore opens (creating if needed) a snapshot directory keeping
// the newest retain checkpoints (0 = DefaultSnapshotRetain).
func NewSnapshotStore(dir string, retain int) (*SnapshotStore, error) {
	if retain <= 0 {
		retain = DefaultSnapshotRetain
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating snapshot directory: %w", err)
	}
	return &SnapshotStore{dir: dir, retain: retain}, nil
}

// Dir returns the store's directory.
func (s *SnapshotStore) Dir() string { return s.dir }

func snapshotFileName(commitSeq uint64) string {
	return fmt.Sprintf("checkpoint-%020d.snap", commitSeq)
}

// Save implements execution.SnapshotStore: atomic temp-write-rename, then
// retention pruning. A crash at any point leaves either the old set or the
// old set plus the complete new file.
func (s *SnapshotStore) Save(snap execution.Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	body, err := execution.EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	framed := make([]byte, 8+len(body))
	binary.BigEndian.PutUint32(framed[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(framed[4:8], crc32.Checksum(body, _crcTable))
	copy(framed[8:], body)

	final := filepath.Join(s.dir, snapshotFileName(snap.CommitSeq))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, framed, 0o644); err != nil {
		return fmt.Errorf("storage: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("storage: publishing snapshot: %w", err)
	}
	s.pruneLocked()
	return nil
}

// pruneLocked removes everything but the newest retain snapshots (and any
// stray temp files).
func (s *SnapshotStore) pruneLocked() {
	names := s.snapshotNamesLocked()
	for i := 0; i < len(names)-s.retain; i++ {
		_ = os.Remove(filepath.Join(s.dir, names[i]))
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// snapshotNamesLocked lists snapshot files sorted ascending by name — the
// zero-padded sequence number makes that commit-sequence order.
func (s *SnapshotStore) snapshotNamesLocked() []string {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".snap") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Latest implements execution.SnapshotStore: the newest decodable snapshot.
// Corrupt files (torn writes from a crash, bit rot caught by the CRC) are
// skipped in favor of the next older one.
func (s *SnapshotStore) Latest() (execution.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := s.snapshotNamesLocked()
	for i := len(names) - 1; i >= 0; i-- {
		snap, err := readSnapshotFile(filepath.Join(s.dir, names[i]))
		if err == nil {
			return snap, true
		}
	}
	return execution.Snapshot{}, false
}

func readSnapshotFile(path string) (execution.Snapshot, error) {
	framed, err := os.ReadFile(path)
	if err != nil {
		return execution.Snapshot{}, err
	}
	if len(framed) < 8 {
		return execution.Snapshot{}, fmt.Errorf("storage: snapshot %s truncated", path)
	}
	size := binary.BigEndian.Uint32(framed[:4])
	sum := binary.BigEndian.Uint32(framed[4:8])
	body := framed[8:]
	if uint32(len(body)) != size {
		return execution.Snapshot{}, fmt.Errorf("storage: snapshot %s length mismatch", path)
	}
	if crc32.Checksum(body, _crcTable) != sum {
		return execution.Snapshot{}, fmt.Errorf("storage: snapshot %s checksum mismatch", path)
	}
	return execution.DecodeSnapshot(body)
}
