package storage

import (
	"os"
	"path/filepath"
	"testing"

	"hammerhead/internal/execution"
	"hammerhead/internal/types"
)

func testSnapshot(seq uint64, round types.Round) execution.Snapshot {
	return execution.Snapshot{
		Checkpoint: execution.Checkpoint{
			Round:       round,
			CommitSeq:   seq,
			StateRoot:   types.HashBytes([]byte{byte(seq)}),
			StateDigest: types.HashBytes([]byte{byte(seq), 1}),
		},
		Floor:   round / 2,
		Ordered: []execution.OrderedRef{{Digest: types.HashBytes([]byte{byte(round)}), Round: round}},
		Data:    []byte("state-bytes"),
	}
}

func TestSnapshotStoreRoundTrip(t *testing.T) {
	store, err := NewSnapshotStore(filepath.Join(t.TempDir(), "snaps"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Latest(); ok {
		t.Fatal("empty store must report no snapshot")
	}
	want := testSnapshot(7, 40)
	if err := store.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Latest()
	if !ok {
		t.Fatal("saved snapshot not found")
	}
	if got.CommitSeq != 7 || got.Round != 40 || got.StateRoot != want.StateRoot ||
		got.StateDigest != want.StateDigest || got.Floor != want.Floor {
		t.Fatalf("round-trip mangled checkpoint: %+v", got.Checkpoint)
	}
	if len(got.Ordered) != 1 || got.Ordered[0] != want.Ordered[0] {
		t.Fatalf("round-trip mangled ordered window: %+v", got.Ordered)
	}
	if string(got.Data) != "state-bytes" {
		t.Fatalf("round-trip mangled data: %q", got.Data)
	}
}

func TestSnapshotStoreRetention(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	store, err := NewSnapshotStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := store.Save(testSnapshot(seq, types.Round(seq*10))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("retention kept %d files, want 2", len(entries))
	}
	got, ok := store.Latest()
	if !ok || got.CommitSeq != 5 {
		t.Fatalf("latest = %d (ok=%v), want 5", got.CommitSeq, ok)
	}
}

func TestSnapshotStoreSkipsCorruptLatest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	store, err := NewSnapshotStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(testSnapshot(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(testSnapshot(2, 20)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest file: the store must fall back to the predecessor.
	path := filepath.Join(dir, "checkpoint-00000000000000000002.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Latest()
	if !ok || got.CommitSeq != 1 {
		t.Fatalf("latest after corruption = %d (ok=%v), want fallback to 1", got.CommitSeq, ok)
	}
}

func TestSnapshotStorePersistsAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	store, err := NewSnapshotStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(testSnapshot(3, 30)); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewSnapshotStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reopened.Latest()
	if !ok || got.CommitSeq != 3 {
		t.Fatalf("reopened latest = %d (ok=%v), want 3", got.CommitSeq, ok)
	}
}
