// Package storage persists a validator's certificates in an append-only
// write-ahead log so a crashed process can rebuild its DAG, committer and
// schedule state on restart.
//
// Only certificates need persisting: the DAG is exactly the cert set, and
// both the commit sequence and the HammerHead schedule history are
// deterministic functions of it (the same property that gives the protocol
// Schedule Agreement gives the WAL its simplicity). The paper's
// implementation persists through RocksDB; a CRC-framed log file is the
// stdlib equivalent with the same contract (DESIGN.md §4).
//
// Two record kinds share the log. Certificate records rebuild the DAG.
// Proposal records persist the header this validator signed for its own slot
// each round — the voted-round high-water mark: on replay the engine
// re-adopts the highest recorded proposal and re-transmits it verbatim
// instead of building a fresh (digest-conflicting) header for a slot whose
// certificate may have survived only in a peer's WAL, which would equivocate
// the slot.
//
// Record layout: 4-byte big-endian body length, 4-byte CRC32C of the body,
// then a version-tagged body. Current bodies are 0x02 + kind byte (1 =
// certificate, 2 = proposal) + the engine's deterministic wire encoding;
// 0x01-tagged bodies are the previous gob envelope and untagged bodies are
// legacy bare-certificate records — both replay losslessly, and the next
// compaction rewrites them into the current form. A torn tail (partial
// final record, truncated file, CRC mismatch at the end) is tolerated on
// replay, as a crash mid-append must not poison recovery.
package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"hammerhead/internal/engine"
	"hammerhead/internal/types"
	"hammerhead/internal/wire"
)

var _crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("storage: WAL is closed")

// _maxRecordSize bounds a single record (a certificate with a full batch).
const _maxRecordSize = 64 << 20

// WAL is an append-only certificate log. Append is not safe for concurrent
// use; the node serializes through its event loop.
type WAL struct {
	path   string
	file   *os.File
	writer *bufio.Writer
	// SyncEveryAppend forces an fsync per record; off by default (the
	// protocol tolerates losing the latest certificates — peers re-serve
	// them through the sync path).
	SyncEveryAppend bool

	appended uint64
	closed   bool
}

// OpenWAL opens (or creates) the log at path for appending. A torn or
// corrupt tail left by a crash mid-append is truncated to the last valid
// record first: without the truncation, records appended after the garbage
// would be unreachable on the NEXT replay (which stops at the first bad
// record), silently losing every certificate persisted after the crash.
// Callers that just replayed the log avoid the validity scan by passing the
// replay's measured prefix through OpenWALTrimmed instead.
func OpenWAL(path string) (*WAL, error) {
	valid, total, err := validPrefix(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if err == nil && valid < total {
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("storage: truncating torn WAL tail: %w", err)
		}
	}
	return openWALAppend(path)
}

// OpenWALTrimmed opens the log for appending after truncating it to the
// given valid prefix length (as returned by ReplayPrefix), skipping
// OpenWAL's own full-file validity scan.
func OpenWALTrimmed(path string, validBytes int64) (*WAL, error) {
	if info, err := os.Stat(path); err == nil && info.Size() > validBytes {
		if err := os.Truncate(path, validBytes); err != nil {
			return nil, fmt.Errorf("storage: truncating torn WAL tail: %w", err)
		}
	}
	return openWALAppend(path)
}

func openWALAppend(path string) (*WAL, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating WAL directory: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening WAL %s: %w", path, err)
	}
	return &WAL{path: path, file: f, writer: bufio.NewWriterSize(f, 1<<20)}, nil
}

// walRecord is the gob envelope of one log record: exactly one field is set.
type walRecord struct {
	Cert     *engine.Certificate
	Proposal *engine.Header
}

// valid reports whether the envelope is well-formed (exactly one payload).
func (r *walRecord) valid() bool {
	return (r.Cert != nil) != (r.Proposal != nil)
}

// Record body version tags. Legacy logs (bare gob-encoded certificates,
// pre-proposal-records) have a gob stream as the first body byte — a uvarint
// message length that is never 1 or 2 (the first gob message is a type
// descriptor) — so the tags are unambiguous. Without them, gob would
// "decode" a legacy certificate into an EMPTY walRecord (field names don't
// overlap), the valid-prefix scan would stop at record one, and the reopen
// truncation would silently erase the node's entire pre-upgrade history.
const (
	// _recordV1 tags the previous gob-envelope body format (decode only).
	_recordV1 = 0x01
	// _recordV2 tags the current wire-codec body format: the tag, a record
	// kind byte, then the payload's engine wire form.
	_recordV2 = 0x02

	_recordKindCert     = 0x01
	_recordKindProposal = 0x02
)

// validPrefix scans the log and returns the byte length of its longest valid
// record prefix, plus the total file size. Validity matches Replay exactly
// (same readRecord/decodeRecord pair): a CRC-intact but undecodable record
// also ends the prefix — Replay would stop there, so anything appended after
// it would be unreachable.
func validPrefix(path string) (valid, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("storage: stat WAL: %w", err)
	}
	total = info.Size()

	r := bufio.NewReaderSize(f, 1<<20)
	for {
		body, ok := readRecord(r)
		if !ok {
			return valid, total, nil
		}
		if _, ok := decodeRecord(body); !ok {
			return valid, total, nil
		}
		valid += int64(8 + len(body))
	}
}

// readRecord reads one framed record body. ok=false at a clean EOF, torn
// header or body, implausible length, or CRC mismatch — the crash-consistent
// stop conditions shared by Replay and the reopen truncation.
func readRecord(r *bufio.Reader) (body []byte, ok bool) {
	var header [8]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, false
	}
	size := binary.BigEndian.Uint32(header[:4])
	sum := binary.BigEndian.Uint32(header[4:])
	if size == 0 || size > _maxRecordSize {
		return nil, false
	}
	body = make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, false
	}
	if crc32.Checksum(body, _crcTable) != sum {
		return nil, false
	}
	return body, true
}

// decodeRecord parses a record body into its envelope. 0x02-tagged bodies
// are the current wire form; 0x01-tagged bodies are the previous gob
// envelope; anything else is a legacy bare-certificate record (pre-upgrade
// logs replay losslessly; their rewrite on the next compaction migrates
// them). Wire-decoded payloads alias body, which readRecord allocates per
// record.
func decodeRecord(body []byte) (walRecord, bool) {
	if len(body) == 0 {
		return walRecord{}, false
	}
	switch body[0] {
	case _recordV2:
		if len(body) < 2 {
			return walRecord{}, false
		}
		r := wire.NewReader(body[2:])
		var rec walRecord
		switch body[1] {
		case _recordKindCert:
			rec.Cert = engine.ReadCertificateWire(r)
		case _recordKindProposal:
			rec.Proposal = engine.ReadHeaderWire(r)
		default:
			return walRecord{}, false
		}
		if r.Finish() != nil {
			return walRecord{}, false
		}
		return rec, true
	case _recordV1:
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(body[1:])).Decode(&rec); err != nil {
			return walRecord{}, false
		}
		if !rec.valid() {
			return walRecord{}, false
		}
		return rec, true
	default:
		var cert engine.Certificate
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&cert); err != nil {
			return walRecord{}, false
		}
		return walRecord{Cert: &cert}, true
	}
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Appended returns the number of records appended in this session.
func (w *WAL) Appended() uint64 { return w.appended }

// Append writes one certificate record.
func (w *WAL) Append(cert *engine.Certificate) error {
	return w.appendRecord(walRecord{Cert: cert})
}

// AppendProposal writes one proposal record: the header this validator signed
// for its own slot. On replay the highest recorded proposal becomes the
// voted-round high-water mark (engine.RestoreProposal).
func (w *WAL) AppendProposal(h *engine.Header) error {
	return w.appendRecord(walRecord{Proposal: h})
}

// appendRecord frames and writes one record. The record encoding must be
// deterministic: replay-trim logic compares byte offsets across restarts.
//
//hammerlint:deterministic
func (w *WAL) appendRecord(rec walRecord) error {
	if w.closed {
		return ErrClosed
	}
	var body []byte
	switch {
	case rec.Cert != nil:
		body = make([]byte, 0, rec.Cert.EncodedSize()+8)
		body = append(body, _recordV2, _recordKindCert)
		body = engine.AppendCertificateWire(body, rec.Cert)
	case rec.Proposal != nil:
		body = make([]byte, 0, rec.Proposal.EncodedSize()+8)
		body = append(body, _recordV2, _recordKindProposal)
		body = engine.AppendHeaderWire(body, rec.Proposal)
	default:
		return fmt.Errorf("storage: encoding WAL record: empty envelope")
	}
	var header [8]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(header[4:], crc32.Checksum(body, _crcTable))
	if _, err := w.writer.Write(header[:]); err != nil {
		return fmt.Errorf("storage: writing record header: %w", err)
	}
	if _, err := w.writer.Write(body); err != nil {
		return fmt.Errorf("storage: writing record body: %w", err)
	}
	if err := w.writer.Flush(); err != nil {
		return fmt.Errorf("storage: flushing WAL: %w", err)
	}
	if w.SyncEveryAppend {
		if err := w.file.Sync(); err != nil {
			return fmt.Errorf("storage: syncing WAL: %w", err)
		}
	}
	w.appended++
	return nil
}

// Sync forces buffered records to stable storage.
func (w *WAL) Sync() error {
	if w.closed {
		return ErrClosed
	}
	if err := w.writer.Flush(); err != nil {
		return err
	}
	return w.file.Sync()
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.writer.Flush(); err != nil {
		_ = w.file.Close()
		return err
	}
	return w.file.Close()
}

// Replay streams every intact certificate record to fn in append order
// (proposal records are skipped). A torn or corrupt tail ends replay silently
// (crash-consistent); corruption in the middle also stops there — the
// protocol's sync path backfills anything lost. fn returning an error aborts
// replay with that error.
func Replay(path string, fn func(*engine.Certificate) error) error {
	_, err := ReplayPrefix(path, fn)
	return err
}

// ReplayPrefix is Replay returning additionally the byte length of the
// valid record prefix it consumed. Callers about to OpenWAL the same log
// pass it through OpenWALTrimmed, sparing the open its own validity scan.
func ReplayPrefix(path string, fn func(*engine.Certificate) error) (int64, error) {
	return ReplayPrefixRecords(path, fn, nil)
}

// ReplayPrefixRecords streams certificate records to certFn and proposal
// records to propFn (either may be nil), in append order, returning the byte
// length of the valid record prefix. The node's recovery path uses it to
// rebuild the DAG and recover the voted-round high-water mark in one scan.
func ReplayPrefixRecords(path string, certFn func(*engine.Certificate) error, propFn func(*engine.Header) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil // nothing to replay
		}
		return 0, fmt.Errorf("storage: opening WAL for replay: %w", err)
	}
	defer f.Close()

	var valid int64
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		body, ok := readRecord(r)
		if !ok {
			return valid, nil // clean EOF, torn record, or corruption: stop
		}
		rec, ok := decodeRecord(body)
		if !ok {
			return valid, nil // undecodable body: stop
		}
		switch {
		case rec.Cert != nil && certFn != nil:
			if err := certFn(rec.Cert); err != nil {
				return valid, err
			}
		case rec.Proposal != nil && propFn != nil:
			if err := propFn(rec.Proposal); err != nil {
				return valid, err
			}
		}
		valid += int64(8 + len(body))
	}
}

// WALInfo summarizes a log's replayable prefix: how many certificates a
// restart would recover and the round span they cover. LowestRound is the
// log's replay frontier floor — checkpoint-driven compaction raises it as
// the executor's checkpoint floor advances.
type WALInfo struct {
	// Certs is the number of intact certificate records in the valid prefix.
	Certs uint64
	// LowestRound and HighestRound bound the recorded certificate rounds
	// (both zero when the log is empty).
	LowestRound  types.Round
	HighestRound types.Round
	// Proposals counts recorded own-slot proposal headers; HighestProposal is
	// the voted-round high-water mark a restart will restore.
	Proposals       uint64
	HighestProposal types.Round
	// ValidBytes is the byte length of the valid record prefix.
	ValidBytes int64
}

// Inspect scans the log and reports its replayable frontier. It shares
// ReplayPrefix's record iteration exactly, so what it reports is precisely
// what a restart will replay.
func Inspect(path string) (WALInfo, error) {
	var info WALInfo
	valid, err := ReplayPrefixRecords(path, func(cert *engine.Certificate) error {
		r := cert.Header.Round
		if info.Certs == 0 || r < info.LowestRound {
			info.LowestRound = r
		}
		if r > info.HighestRound {
			info.HighestRound = r
		}
		info.Certs++
		return nil
	}, func(h *engine.Header) error {
		info.Proposals++
		if h.Round > info.HighestProposal {
			info.HighestProposal = h.Round
		}
		return nil
	})
	info.ValidBytes = valid
	return info, err
}

// CompactTo rewrites an OPEN log in place, keeping only certificates with
// round >= floor, and restores the append session over the compacted file.
// The node's WAL writer calls it when the executor's checkpoint floor
// advances: certificates below the floor are covered by a persisted
// checkpoint, so replaying them after a restart is redundant and the log
// would otherwise grow without bound. Must be called from the goroutine that
// owns Append (the write handle is closed and reopened around the rewrite).
// On a reopen failure the WAL transitions to closed; a compaction failure
// with a healthy reopen leaves the original log intact and appendable.
func (w *WAL) CompactTo(floor types.Round) error {
	if w.closed {
		return ErrClosed
	}
	if err := w.writer.Flush(); err != nil {
		return err
	}
	if err := w.file.Close(); err != nil {
		w.closed = true
		return fmt.Errorf("storage: closing WAL for compaction: %w", err)
	}
	compactErr := Compact(w.path, floor)
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.closed = true
		return fmt.Errorf("storage: reopening WAL after compaction: %w", err)
	}
	w.file = f
	w.writer = bufio.NewWriterSize(f, 1<<20)
	return compactErr
}

// Compact rewrites the log keeping only records with round >= floor, using a
// temp-file-and-rename so a crash mid-compaction leaves either the old or the
// new log intact. The highest proposal record is always retained even below
// the floor: it is the voted-round high-water mark, and dropping it would
// silently widen the slot-equivocation window after the next restart. The
// WAL must be closed by the caller first (open sessions use CompactTo, which
// handles the handle swap).
func Compact(path string, floor types.Round) error {
	tmp := path + ".compact"
	// A crash mid-compaction can leave a stale temp file; OpenWAL would
	// APPEND after its valid prefix, renaming below-floor and duplicate
	// records into the live log. Start from scratch instead.
	if err := os.Remove(tmp); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("storage: clearing stale compaction file: %w", err)
	}
	out, err := OpenWAL(tmp)
	if err != nil {
		return err
	}
	// Single pass: proposals at or above the floor copy through; the highest
	// below-floor proposal is buffered and appended at the end ONLY when no
	// above-floor proposal preserved the mark (replay takes the highest, so
	// record order does not matter for proposals).
	var bestBelow *engine.Header
	keptMark := false
	_, replayErr := ReplayPrefixRecords(path, func(cert *engine.Certificate) error {
		if cert.Header.Round < floor {
			return nil
		}
		return out.Append(cert)
	}, func(h *engine.Header) error {
		if h.Round >= floor {
			keptMark = true
			return out.AppendProposal(h)
		}
		if bestBelow == nil || h.Round > bestBelow.Round {
			bestBelow = h
		}
		return nil
	})
	if replayErr == nil && !keptMark && bestBelow != nil {
		replayErr = out.AppendProposal(bestBelow)
	}
	if replayErr != nil {
		_ = out.Close()
		_ = os.Remove(tmp)
		return replayErr
	}
	if err := out.Sync(); err != nil {
		_ = out.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
