package storage

import (
	"testing"

	"hammerhead/internal/engine"
	"hammerhead/internal/types"
)

// FuzzWALRecordDecode hammers decodeRecord with raw bytes (it must never
// panic — replay runs it on whatever survives a CRC check over possibly
// garbage disk contents) and, when the bytes happen to frame a valid record,
// re-encodes it through the current wire form to prove convergence.
func FuzzWALRecordDecode(f *testing.F) {
	cert := testCert(7, 2)
	certBody := append([]byte{_recordV2, _recordKindCert}, engine.AppendCertificateWire(nil, cert)...)
	f.Add(certBody)
	prop := &engine.Header{Round: 9, Source: 1, Signature: []byte("own")}
	f.Add(append([]byte{_recordV2, _recordKindProposal}, engine.AppendHeaderWire(nil, prop)...))
	f.Add([]byte{_recordV2, 0xFF, 0x01})
	f.Add([]byte{_recordV1, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		rec, ok := decodeRecord(body)
		if !ok {
			return
		}
		if !rec.valid() {
			t.Fatal("decodeRecord returned ok for an invalid envelope")
		}
	})
}

// FuzzWALRecordRoundTrip drives fuzz-shaped certificates and proposals
// through the current record body encoding and back, checking the digests
// survive.
func FuzzWALRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(0), []byte("payload"), []byte("sig"), true)
	f.Add(uint64(999), uint32(3), []byte{}, []byte{0xFF}, false)
	f.Fuzz(func(t *testing.T, round uint64, source uint32, payload, sig []byte, isCert bool) {
		h := engine.Header{
			Round:     types.Round(round),
			Source:    types.ValidatorID(source),
			Edges:     []types.Digest{types.HashBytes(payload)},
			Signature: sig,
		}
		if len(payload) > 0 {
			h.Batch = &types.Batch{Transactions: []types.Transaction{{ID: round, Payload: payload}}}
		}
		var body []byte
		if isCert {
			cert := &engine.Certificate{Header: h, Votes: []engine.VoteSig{{Voter: 1, Signature: sig}}}
			body = append([]byte{_recordV2, _recordKindCert}, engine.AppendCertificateWire(nil, cert)...)
			rec, ok := decodeRecord(body)
			if !ok || rec.Cert == nil {
				t.Fatal("wire certificate record did not decode")
			}
			if rec.Cert.Digest() != cert.Digest() {
				t.Fatal("certificate digest changed across the record body")
			}
		} else {
			body = append([]byte{_recordV2, _recordKindProposal}, engine.AppendHeaderWire(nil, &h)...)
			rec, ok := decodeRecord(body)
			if !ok || rec.Proposal == nil {
				t.Fatal("wire proposal record did not decode")
			}
			if rec.Proposal.Digest() != h.Digest() {
				t.Fatal("proposal digest changed across the record body")
			}
		}
	})
}
