package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"hammerhead/internal/engine"
	"hammerhead/internal/types"
)

func testCert(round types.Round, source types.ValidatorID) *engine.Certificate {
	return &engine.Certificate{
		Header: engine.Header{
			Round:  round,
			Source: source,
			Edges:  []types.Digest{types.HashBytes([]byte{byte(round)})},
			Batch: &types.Batch{Transactions: []types.Transaction{
				{ID: uint64(round)*100 + uint64(source), Payload: []byte("p")},
			}},
			Signature: []byte("sig"),
		},
		Votes: []engine.VoteSig{{Voter: 0, Signature: []byte("v0")}, {Voter: 1, Signature: []byte("v1")}},
	}
}

func replayAll(t *testing.T, path string) []*engine.Certificate {
	t.Helper()
	var got []*engine.Certificate
	if err := Replay(path, func(c *engine.Certificate) error {
		got = append(got, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal", "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []*engine.Certificate{testCert(1, 0), testCert(1, 1), testCert(2, 0)}
	for _, c := range want {
		if err := w.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if w.Appended() != 3 {
		t.Fatalf("Appended = %d", w.Appended())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Digest() != want[i].Digest() {
			t.Fatalf("record %d digest mismatch", i)
		}
		if got[i].Header.Batch.Transactions[0].ID != want[i].Header.Batch.Transactions[0].ID {
			t.Fatalf("record %d batch mangled", i)
		}
		if len(got[i].Votes) != 2 {
			t.Fatalf("record %d votes mangled", i)
		}
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	if got := replayAll(t, filepath.Join(t.TempDir(), "nope.log")); len(got) != 0 {
		t.Fatalf("replayed %d records from a missing file", len(got))
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(1); r <= 3; r++ {
		if err := w.Append(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop 5 bytes off the file.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(got))
	}
}

func TestReplayStopsAtCorruptBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testCert(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testCert(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's body.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 1 {
		t.Fatalf("replayed %d records with corrupt second record, want 1", len(got))
	}
}

func TestReopenAfterTornTailKeepsLaterAppends(t *testing.T) {
	// Crash mid-append regression: a torn final record must be truncated on
	// reopen. Before the fix, reopen appended AFTER the garbage, so the next
	// replay (which stops at the first bad record) lost every certificate
	// persisted after the crash.
	path := filepath.Join(t.TempDir(), "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(1); r <= 3; r++ {
		if err := w.Append(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the third record (crash mid-append), leaving a partial tail.
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(4); r <= 5; r++ {
		if err := w2.Append(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, path)
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4 (2 intact + 2 post-crash)", len(got))
	}
	wantRounds := []types.Round{1, 2, 4, 5}
	for i, c := range got {
		if c.Header.Round != wantRounds[i] {
			t.Fatalf("record %d round = %d, want %d", i, c.Header.Round, wantRounds[i])
		}
	}
}

func TestOpenWALTrimmedUsesReplayPrefix(t *testing.T) {
	// The node's recovery path: ReplayPrefix measures the valid prefix and
	// OpenWALTrimmed truncates to it without re-scanning; appends after a
	// torn tail stay reachable.
	path := filepath.Join(t.TempDir(), "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(1); r <= 3; r++ {
		if err := w.Append(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	replayed := 0
	valid, err := ReplayPrefix(path, func(*engine.Certificate) error { replayed++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 2 || valid <= 0 || valid >= info.Size() {
		t.Fatalf("replayed=%d valid=%d (file %d)", replayed, valid, info.Size())
	}
	w2, err := OpenWALTrimmed(path, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(testCert(4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
}

func TestOpenWALTruncatesGarbageTail(t *testing.T) {
	// A tail whose CRC does not match (partially synced sector) must also be
	// dropped, not just short headers/bodies.
	path := filepath.Join(t.TempDir(), "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testCert(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 4, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(testCert(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
}

func TestReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testCert(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(testCert(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 2 {
		t.Fatalf("replayed %d records after reopen, want 2", len(got))
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testCert(1, 0)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestCompactDropsOldRounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(1); r <= 10; r++ {
		if err := w.Append(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Compact(path, 6); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 5 {
		t.Fatalf("compacted log has %d records, want 5 (rounds 6..10)", len(got))
	}
	for _, c := range got {
		if c.Header.Round < 6 {
			t.Fatalf("round %d survived compaction below floor 6", c.Header.Round)
		}
	}
	// The compacted log remains appendable.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(testCert(11, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 6 {
		t.Fatalf("post-compaction append: %d records, want 6", len(got))
	}
}

func TestSyncEveryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SyncEveryAppend = true
	if err := w.Append(testCert(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 1 {
		t.Fatalf("replayed %d, want 1", len(got))
	}
}

func TestInspectReportsReplayFrontier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal", "certs.log")

	// A missing log is an empty frontier, not an error (mirrors Replay).
	info, err := Inspect(path)
	if err != nil || info.Certs != 0 || info.ValidBytes != 0 {
		t.Fatalf("missing log: info=%+v err=%v", info, err)
	}

	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(3); r <= 7; r++ {
		if err := w.Append(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err = Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Certs != 5 || info.LowestRound != 3 || info.HighestRound != 7 {
		t.Fatalf("info = %+v, want 5 certs over rounds [3,7]", info)
	}
	if st, err := os.Stat(path); err != nil || info.ValidBytes != st.Size() {
		t.Fatalf("ValidBytes = %d, want full size %v (err=%v)", info.ValidBytes, st, err)
	}

	// A torn tail is excluded from the frontier, exactly as replay excludes it.
	if err := os.Truncate(path, info.ValidBytes-1); err != nil {
		t.Fatal(err)
	}
	info, err = Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Certs != 4 || info.HighestRound != 6 {
		t.Fatalf("torn-tail info = %+v, want 4 certs up to round 6", info)
	}
}

func TestCompactToShrinksOpenWALAndKeepsAppending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal", "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(1); r <= 10; r++ {
		if err := w.Append(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}

	// Compact the OPEN log: rounds below 6 are covered by a checkpoint.
	if err := w.CompactTo(6); err != nil {
		t.Fatal(err)
	}
	after, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.LowestRound != 6 || after.Certs != 5 {
		t.Fatalf("compacted info = %+v, want 5 certs from round 6", after)
	}
	if after.ValidBytes >= before.ValidBytes {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before.ValidBytes, after.ValidBytes)
	}

	// The append session survives the handle swap.
	if err := w.Append(testCert(11, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 6 || got[0].Header.Round != 6 || got[5].Header.Round != 11 {
		rounds := make([]types.Round, len(got))
		for i, c := range got {
			rounds[i] = c.Header.Round
		}
		t.Fatalf("post-compaction replay rounds = %v, want [6..10, 11]", rounds)
	}

	// Compacting a closed WAL is refused.
	if err := w.CompactTo(8); err == nil {
		t.Fatal("CompactTo on a closed WAL must fail")
	}
}

func TestCompactIgnoresStaleTempFile(t *testing.T) {
	// A crash mid-compaction leaves <path>.compact behind; the next
	// compaction must start from scratch, not append after the stale prefix
	// (which would rename below-floor and duplicate records into the live
	// log).
	path := filepath.Join(t.TempDir(), "wal", "certs.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(1); r <= 6; r++ {
		if err := w.Append(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Fabricate the stale temp file: valid records well below the floor.
	stale, err := OpenWAL(path + ".compact")
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(1); r <= 3; r++ {
		if err := stale.Append(testCert(r, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := stale.Close(); err != nil {
		t.Fatal(err)
	}

	if err := w.CompactTo(4); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, c := range replayAll(t, path) {
		if c.Header.Round < 4 {
			t.Fatalf("stale temp-file record (round %d, v%d) leaked into the compacted log",
				c.Header.Round, c.Header.Source)
		}
	}
}

// testProposal builds a signed-looking own-slot header record.
func testProposal(round types.Round, source types.ValidatorID) *engine.Header {
	return &engine.Header{
		Round:     round,
		Source:    source,
		Signature: []byte("proposal-sig"),
	}
}

// TestProposalRecordsRoundTrip: proposal records interleave with certificate
// records, replay keeps the two streams separate and in order, and the
// certificate-only Replay skips proposals entirely.
func TestProposalRecordsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testCert(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendProposal(testProposal(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testCert(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendProposal(testProposal(3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var certs, props []types.Round
	if _, err := ReplayPrefixRecords(path, func(c *engine.Certificate) error {
		certs = append(certs, c.Header.Round)
		return nil
	}, func(h *engine.Header) error {
		props = append(props, h.Round)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(certs) != 2 || certs[0] != 1 || certs[1] != 2 {
		t.Fatalf("cert rounds = %v, want [1 2]", certs)
	}
	if len(props) != 2 || props[0] != 2 || props[1] != 3 {
		t.Fatalf("proposal rounds = %v, want [2 3]", props)
	}

	// Certificate-only replay must skip proposal records.
	if got := replayAll(t, path); len(got) != 2 {
		t.Fatalf("Replay yielded %d certs, want 2", len(got))
	}

	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Proposals != 2 || info.HighestProposal != 3 {
		t.Fatalf("Inspect proposals = %d highest = %d, want 2/3", info.Proposals, info.HighestProposal)
	}
}

// TestSyncedProposalSurvivesTornTail pins the durability contract the node's
// synchronous proposal persistence relies on: once AppendProposal + Sync has
// returned, the proposal record survives any crash — including one that
// tears a LATER record mid-write. This is the regression for the
// proposal-record torn-tail window: before the node fsynced the record and
// blocked the proposer on it, the header could reach peers while the
// voted-mark was still in the page cache, and a crash there re-proposed
// (equivocated) the slot on restart.
func TestSyncedProposalSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testCert(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendProposal(testProposal(5, 0)); err != nil {
		t.Fatal(err)
	}
	// The durability point the proposer waits behind before broadcasting.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// A later certificate append is in flight when the process dies...
	if err := w.Append(testCert(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and the crash tears it mid-record.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	var certs []types.Round
	var prop *engine.Header
	if _, err := ReplayPrefixRecords(path, func(c *engine.Certificate) error {
		certs = append(certs, c.Header.Round)
		return nil
	}, func(h *engine.Header) error {
		prop = h
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(certs) != 1 || certs[0] != 1 {
		t.Fatalf("cert rounds = %v, want [1] (torn record dropped)", certs)
	}
	if prop == nil || prop.Round != 5 {
		t.Fatalf("synced proposal record lost to the torn tail: got %+v", prop)
	}
}

// TestCompactKeepsProposalHighWaterMark: compaction drops below-floor
// proposal records like certificates, but the HIGHEST proposal always
// survives — it is the anti-equivocation mark, and losing it would widen the
// slot-equivocation window after the next restart.
func TestCompactKeepsProposalHighWaterMark(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(1); r <= 6; r++ {
		if err := w.Append(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
		if err := w.AppendProposal(testProposal(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Floor above every proposal: the mark at round 6 must still survive.
	if err := Compact(path, 10); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Certs != 0 {
		t.Fatalf("compaction kept %d below-floor certs", info.Certs)
	}
	if info.Proposals != 1 || info.HighestProposal != 6 {
		t.Fatalf("proposals after compaction = %d highest = %d, want the round-6 mark only", info.Proposals, info.HighestProposal)
	}
}

// TestLegacyCertificateRecordsReplay is the upgrade-path regression: logs
// written before the record envelope (bare gob-encoded certificates, no
// version tag) must replay losslessly — without the tag discrimination, the
// valid-prefix scan would stop at record one and the reopen truncation would
// silently erase the node's entire pre-upgrade history.
func TestLegacyCertificateRecordsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := types.Round(1); r <= 3; r++ {
		var body bytes.Buffer
		if err := gob.NewEncoder(&body).Encode(testCert(r, 0)); err != nil {
			t.Fatal(err)
		}
		var header [8]byte
		binary.BigEndian.PutUint32(header[:4], uint32(body.Len()))
		binary.BigEndian.PutUint32(header[4:], crc32.Checksum(body.Bytes(), crc32.MakeTable(crc32.Castagnoli)))
		if _, err := f.Write(header[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(body.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, path)
	if len(got) != 3 {
		t.Fatalf("legacy log replayed %d certs, want 3", len(got))
	}
	// Reopening must keep (not truncate) the legacy prefix and append new
	// envelope records after it.
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testCert(4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendProposal(testProposal(5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Certs != 4 || info.HighestRound != 4 || info.Proposals != 1 || info.HighestProposal != 5 {
		t.Fatalf("mixed-format log: %+v, want 4 certs to round 4 + the round-5 proposal", info)
	}
}
