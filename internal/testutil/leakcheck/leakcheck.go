// Package leakcheck fails a test binary that exits with goroutines still
// running — a hand-rolled, dependency-free equivalent of go.uber.org/goleak
// (the build environment is offline, so the real module cannot be pulled).
//
// Wire it into a package with a TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
//
// After the tests pass, the checker snapshots all goroutine stacks, filters
// the runtime's and testing's own background goroutines, and retries over a
// grace window so goroutines that are mid-shutdown (a Close that signalled
// its workers but has not joined them yet) get a chance to drain. Anything
// still alive after the window fails the binary with the full stacks — the
// earliest, cheapest signal that a Close path leaks its workers.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Grace is how long the checker waits for straggling goroutines to drain
// before declaring them leaked.
const Grace = 5 * time.Second

// defaultIgnores are substrings of goroutine stacks that are never leaks:
// the runtime's and the testing package's own background goroutines, plus
// this package's snapshotting goroutine.
var defaultIgnores = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.runTests(",
	"testing.(*M).",
	"runtime.goexit0",
	"created by runtime",
	"runtime.ensureSigM",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
	"leakcheck.snapshot",
}

// VerifyTestMain runs the package's tests and then fails the binary if
// goroutines leaked. Extra ignore substrings exempt stacks the caller knows
// are intentional (matched against the full stack text).
func VerifyTestMain(m *testing.M, ignores ...string) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(ignores...); leaked != "" {
			fmt.Fprintf(os.Stderr, "leakcheck: goroutines still running after tests:\n\n%s", leaked)
			code = 1
		}
	}
	os.Exit(code)
}

// Check waits up to Grace for non-ignored goroutines to drain and returns
// the stacks of any that remain ("" = clean). Exposed so individual tests
// can assert no-leak at a specific point, not only at process exit.
func Check(ignores ...string) string {
	deadline := time.Now().Add(Grace)
	wait := time.Millisecond
	for {
		leaked := leakedStacks(ignores)
		if len(leaked) == 0 {
			return ""
		}
		if time.Now().After(deadline) {
			return strings.Join(leaked, "\n\n")
		}
		time.Sleep(wait)
		if wait < 100*time.Millisecond {
			wait *= 2
		}
	}
}

// leakedStacks snapshots every goroutine and returns the stacks that match
// no ignore pattern. The calling goroutine is filtered by the
// leakcheck.snapshot frame on its stack.
func leakedStacks(ignores []string) []string {
	var leaked []string
	for _, stack := range strings.Split(snapshot(), "\n\n") {
		if strings.TrimSpace(stack) == "" || ignored(stack, ignores) {
			continue
		}
		leaked = append(leaked, stack)
	}
	return leaked
}

func ignored(stack string, extra []string) bool {
	for _, pat := range defaultIgnores {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	for _, pat := range extra {
		if pat != "" && strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}

// snapshot returns the full all-goroutine stack dump, growing the buffer
// until it fits.
func snapshot() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, 2*len(buf))
	}
}
