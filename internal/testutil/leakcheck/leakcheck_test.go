package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCheckCleanAfterDrain: a goroutine that exits inside the grace window is
// not a leak.
func TestCheckCleanAfterDrain(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	if leaked := Check(); leaked != "" {
		t.Fatalf("draining goroutine reported as leak:\n%s", leaked)
	}
	<-done
}

// TestCheckIgnores: an intentionally parked goroutine is exempted by an
// ignore substring and otherwise reported.
func TestCheckIgnores(t *testing.T) {
	quit := make(chan struct{})
	defer close(quit)
	started := make(chan struct{})
	go parkedForTest(started, quit)
	<-started

	if leaked := Check("leakcheck.parkedForTest"); leaked != "" {
		t.Fatalf("ignored goroutine still reported:\n%s", leaked)
	}

	// Without the ignore it must be reported — shrink the grace window by
	// checking the raw snapshot path directly instead of waiting out Check.
	leaked := leakedStacks(nil)
	found := false
	for _, s := range leaked {
		if strings.Contains(s, "leakcheck.parkedForTest") {
			found = true
		}
	}
	if !found {
		t.Fatal("parked goroutine missing from leak report")
	}
}

func parkedForTest(started chan<- struct{}, quit <-chan struct{}) {
	close(started)
	<-quit
}
