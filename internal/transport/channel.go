package transport

import (
	"fmt"
	"sync"

	"hammerhead/internal/engine"
	"hammerhead/internal/types"
)

// ChannelNetwork connects in-process validators through buffered channels —
// the transport used by single-binary clusters and integration tests. Safe
// for concurrent use.
type ChannelNetwork struct {
	mu        sync.RWMutex
	endpoints map[types.ValidatorID]*ChannelTransport
	bufSize   int
}

// NewChannelNetwork creates an empty network; each endpoint gets a delivery
// queue of bufSize messages (drop-newest beyond that, like a saturated
// socket buffer).
func NewChannelNetwork(bufSize int) *ChannelNetwork {
	if bufSize < 1 {
		bufSize = 1024
	}
	return &ChannelNetwork{
		endpoints: make(map[types.ValidatorID]*ChannelTransport),
		bufSize:   bufSize,
	}
}

// Join registers a validator and returns its transport. The handler is
// invoked from a dedicated delivery goroutine.
func (n *ChannelNetwork) Join(id types.ValidatorID, handler Handler) (*ChannelTransport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.endpoints[id]; dup {
		return nil, fmt.Errorf("transport: validator %s already joined", id)
	}
	t := &ChannelTransport{
		network: n,
		self:    id,
		inbox:   make(chan envelope, n.bufSize),
		done:    make(chan struct{}),
	}
	n.endpoints[id] = t
	t.wg.Add(1)
	go t.deliverLoop(handler)
	return t, nil
}

func (n *ChannelNetwork) lookup(id types.ValidatorID) (*ChannelTransport, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	t, ok := n.endpoints[id]
	return t, ok
}

func (n *ChannelNetwork) peers(except types.ValidatorID) []*ChannelTransport {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*ChannelTransport, 0, len(n.endpoints))
	for id, t := range n.endpoints {
		if id != except {
			out = append(out, t)
		}
	}
	return out
}

func (n *ChannelNetwork) leave(id types.ValidatorID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, id)
}

type envelope struct {
	from types.ValidatorID
	msg  *engine.Message
}

// ChannelTransport is one validator's endpoint in a ChannelNetwork.
type ChannelTransport struct {
	network *ChannelNetwork
	self    types.ValidatorID
	inbox   chan envelope
	done    chan struct{}
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool

	dropped uint64
	dropMu  sync.Mutex
}

var _ Transport = (*ChannelTransport)(nil)

func (t *ChannelTransport) deliverLoop(handler Handler) {
	defer t.wg.Done()
	for {
		select {
		case env := <-t.inbox:
			handler(env.from, env.msg)
		case <-t.done:
			return
		}
	}
}

// enqueue delivers into this endpoint's inbox without blocking the sender.
// The message is cloned so each recipient owns its payload, as it would
// after gob-decoding from a TCP stream: pre-verify stages mark and mutate
// payloads, and a broadcast must not let recipients observe each other's
// (or the sender's) copies.
func (t *ChannelTransport) enqueue(from types.ValidatorID, msg *engine.Message) {
	msg = msg.Clone()
	select {
	case t.inbox <- envelope{from: from, msg: msg}:
	case <-t.done:
	default:
		// Queue full: drop, as a saturated socket would. The engine's
		// resync path recovers lost certificates.
		t.dropMu.Lock()
		t.dropped++
		t.dropMu.Unlock()
	}
}

// Send implements Transport.
func (t *ChannelTransport) Send(to types.ValidatorID, msg *engine.Message) error {
	if t.isClosed() {
		return ErrClosed
	}
	peer, ok := t.network.lookup(to)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	peer.enqueue(t.self, msg)
	return nil
}

// Broadcast implements Transport.
func (t *ChannelTransport) Broadcast(msg *engine.Message) error {
	if t.isClosed() {
		return ErrClosed
	}
	for _, peer := range t.network.peers(t.self) {
		peer.enqueue(t.self, msg)
	}
	return nil
}

// Dropped returns the number of messages dropped at this endpoint's inbox.
func (t *ChannelTransport) Dropped() uint64 {
	t.dropMu.Lock()
	defer t.dropMu.Unlock()
	return t.dropped
}

func (t *ChannelTransport) isClosed() bool {
	t.closeMu.Lock()
	defer t.closeMu.Unlock()
	return t.closed
}

// Close implements Transport.
func (t *ChannelTransport) Close() error {
	t.closeMu.Lock()
	if t.closed {
		t.closeMu.Unlock()
		return nil
	}
	t.closed = true
	t.closeMu.Unlock()

	t.network.leave(t.self)
	close(t.done)
	t.wg.Wait()
	return nil
}
