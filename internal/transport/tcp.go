package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hammerhead/internal/engine"
	"hammerhead/internal/types"
)

// Wire framing constants.
const (
	_magic        = uint32(0x48484541) // "HHEA": HammerHead engine announce
	_maxFrameSize = 64 << 20
	_dialTimeout  = 3 * time.Second
	_redialDelay  = 500 * time.Millisecond
)

// SendQueueLen is each peer's outbound queue bound. A saturated peer (slow,
// partitioned, or down) drops the NEWEST frames beyond it — Send never
// blocks the caller, which is what keeps an RPC-driven ingest path from
// stalling on one dead validator; the protocol's resync machinery backfills
// whatever the drops cost.
const SendQueueLen = 4096

// TCPConfig configures a TCP endpoint.
type TCPConfig struct {
	// Self is this validator's ID.
	Self types.ValidatorID
	// ListenAddr is the local bind address ("host:port").
	ListenAddr string
	// PeerAddrs maps every other validator to its dial address.
	PeerAddrs map[types.ValidatorID]string
	// Handler receives inbound messages.
	Handler Handler
}

// TCPTransport implements Transport over persistent TCP connections: one
// outbound connection per peer (with automatic redial) carrying
// length-prefixed wire-codec frames (legacy gob frames still decode), and a
// listener accepting inbound streams that
// start with a magic + sender-ID handshake.
type TCPTransport struct {
	cfg      TCPConfig
	listener net.Listener

	mu     sync.Mutex
	peers  map[types.ValidatorID]*tcpPeer
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// tcpPeer is one outbound connection with its send queue.
type tcpPeer struct {
	addr  string
	queue chan []byte
}

// NewTCP binds the listener and starts outbound queues for all peers.
func NewTCP(cfg TCPConfig) (*TCPTransport, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("transport: TCP handler is required")
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", cfg.ListenAddr, err)
	}
	t := &TCPTransport{
		cfg:      cfg,
		listener: ln,
		peers:    make(map[types.ValidatorID]*tcpPeer),
		done:     make(chan struct{}),
	}
	for id, addr := range cfg.PeerAddrs {
		if id == cfg.Self {
			continue
		}
		p := &tcpPeer{addr: addr, queue: make(chan []byte, SendQueueLen)}
		t.peers[id] = p
		t.wg.Add(1)
		go t.sendLoop(p)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// Send implements Transport.
func (t *TCPTransport) Send(to types.ValidatorID, msg *engine.Message) error {
	frame, err := encodeFrame(msg)
	if err != nil {
		return err
	}
	return t.enqueue(to, frame)
}

// Broadcast implements Transport. The message is encoded once.
func (t *TCPTransport) Broadcast(msg *engine.Message) error {
	frame, err := encodeFrame(msg)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	ids := make([]types.ValidatorID, 0, len(t.peers))
	for id := range t.peers {
		ids = append(ids, id)
	}
	t.mu.Unlock()
	var firstErr error
	for _, id := range ids {
		if err := t.enqueue(id, frame); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (t *TCPTransport) enqueue(to types.ValidatorID, frame []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	p, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	select {
	case p.queue <- frame:
		return nil
	default:
		// Queue full: drop like a saturated socket; resync recovers.
		return nil
	}
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.done)
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

// ---- outbound ----

// sendLoop owns one peer's connection: dial (with redial on failure), write
// the handshake, then drain the queue.
func (t *TCPTransport) sendLoop(p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		// Wait for the next frame first so idle peers hold no connection
		// retry churn after Close.
		var frame []byte
		select {
		case frame = <-p.queue:
		case <-t.done:
			return
		}
		for {
			if conn == nil {
				c, err := t.dialAndHandshake(p.addr)
				if err != nil {
					select {
					case <-time.After(_redialDelay):
						// Drop this frame after a failed dial window; newer
						// traffic supersedes it and resync fills gaps.
						frame = nil
					case <-t.done:
						return
					}
					if frame == nil {
						break
					}
					continue
				}
				conn = c
			}
			if _, err := conn.Write(frame); err != nil {
				_ = conn.Close()
				conn = nil
				continue // redial and retry once with the same frame
			}
			break
		}
	}
}

func (t *TCPTransport) dialAndHandshake(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, _dialTimeout)
	if err != nil {
		return nil, err
	}
	var hello [8]byte
	binary.BigEndian.PutUint32(hello[:4], _magic)
	binary.BigEndian.PutUint32(hello[4:], uint32(t.cfg.Self))
	if _, err := conn.Write(hello[:]); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return conn, nil
}

// ---- inbound ----

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient accept error: brief pause, keep serving.
			select {
			case <-time.After(50 * time.Millisecond):
			case <-t.done:
				return
			}
			continue
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()

	go func() { // unblock the read on shutdown
		<-t.done
		_ = conn.Close()
	}()

	var hello [8]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	if binary.BigEndian.Uint32(hello[:4]) != _magic {
		return
	}
	from := types.ValidatorID(binary.BigEndian.Uint32(hello[4:]))

	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size == 0 || size > _maxFrameSize {
			return
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		// body is allocated per frame, so the decoded message may alias it
		// (engine.DecodeMessage is zero-copy for byte fields). Legacy peers
		// that still send gob frames decode through the same entry point.
		msg, err := engine.DecodeMessage(body)
		if err != nil {
			return
		}
		t.cfg.Handler(from, msg)
	}
}

// encodeFrame serializes a message with its length prefix in the engine's
// versioned wire format — one allocation per frame, prefix included.
func encodeFrame(msg *engine.Message) ([]byte, error) {
	frame, err := engine.AppendMessage(make([]byte, 4, msg.EncodedSize()+20), msg)
	if err != nil {
		return nil, fmt.Errorf("transport: encoding %s: %w", msg.Kind, err)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	return frame, nil
}
