// Package transport moves engine messages between validators. Two
// implementations share one interface: an in-process channel transport for
// tests and single-binary clusters, and a TCP transport with length-prefixed
// gob frames, identity handshake and automatic reconnection for real
// deployments (the paper's implementation uses QUIC point-to-point channels;
// TCP gives the same reliable authenticated-pairwise abstraction from the
// standard library — DESIGN.md §4).
package transport

import (
	"errors"

	"hammerhead/internal/engine"
	"hammerhead/internal/types"
)

// Handler consumes an inbound message. Implementations are called from
// transport-owned goroutines; handlers must be safe for concurrent use (the
// node funnels into a single loop channel).
type Handler func(from types.ValidatorID, msg *engine.Message)

// Transport delivers engine messages to peers.
type Transport interface {
	// Send transmits to one peer. Best effort: transports buffer and retry
	// transient failures internally; an error means the message was dropped.
	Send(to types.ValidatorID, msg *engine.Message) error
	// Broadcast transmits to every other committee member.
	Broadcast(msg *engine.Message) error
	// Close releases all resources and stops delivery.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to a validator with no route.
var ErrUnknownPeer = errors.New("transport: unknown peer")
