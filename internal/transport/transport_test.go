package transport_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hammerhead/internal/engine"
	"hammerhead/internal/transport"
	"hammerhead/internal/types"
)

// collector is a thread-safe inbound message sink.
type collector struct {
	mu   sync.Mutex
	msgs []received
	cond *sync.Cond
}

type received struct {
	from types.ValidatorID
	msg  *engine.Message
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) handler(from types.ValidatorID, msg *engine.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, received{from: from, msg: msg})
	c.cond.Broadcast()
}

// waitFor blocks until n messages arrived or the timeout expires.
func (c *collector) waitFor(t *testing.T, n int, timeout time.Duration) []received {
	t.Helper()
	deadline := time.Now().Add(timeout)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.mu.Lock()
		defer c.mu.Unlock()
		for len(c.msgs) < n {
			c.cond.Wait()
		}
	}()
	select {
	case <-done:
	case <-time.After(time.Until(deadline)):
		c.mu.Lock()
		got := len(c.msgs)
		c.mu.Unlock()
		t.Fatalf("timed out waiting for %d messages, have %d", n, got)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]received(nil), c.msgs...)
}

func voteMsg(voter types.ValidatorID, round types.Round) *engine.Message {
	return &engine.Message{Kind: engine.KindVote, Vote: &engine.Vote{
		Round: round, Voter: voter, Origin: 0,
	}}
}

func TestChannelSendAndBroadcast(t *testing.T) {
	net := transport.NewChannelNetwork(64)
	cols := make([]*collector, 3)
	trs := make([]*transport.ChannelTransport, 3)
	for i := range cols {
		cols[i] = newCollector()
		tr, err := net.Join(types.ValidatorID(i), cols[i].handler)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		defer tr.Close()
	}

	if err := trs[0].Send(1, voteMsg(0, 5)); err != nil {
		t.Fatal(err)
	}
	got := cols[1].waitFor(t, 1, time.Second)
	if got[0].from != 0 || got[0].msg.Vote.Round != 5 {
		t.Fatalf("received %+v", got[0])
	}

	if err := trs[2].Broadcast(voteMsg(2, 9)); err != nil {
		t.Fatal(err)
	}
	cols[0].waitFor(t, 1, time.Second)
	cols[1].waitFor(t, 2, time.Second)
}

func TestChannelUnknownPeer(t *testing.T) {
	net := transport.NewChannelNetwork(8)
	tr, err := net.Join(0, func(types.ValidatorID, *engine.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(9, voteMsg(0, 1)); err == nil {
		t.Fatal("send to unknown peer must fail")
	}
}

func TestChannelCloseStopsDelivery(t *testing.T) {
	net := transport.NewChannelNetwork(8)
	col := newCollector()
	tr0, err := net.Join(0, func(types.ValidatorID, *engine.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := net.Join(1, col.handler)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr0.Send(1, voteMsg(0, 1)); err == nil {
		t.Fatal("send to departed peer must fail")
	}
	if err := tr1.Send(0, voteMsg(1, 1)); err != transport.ErrClosed {
		t.Fatalf("send on closed transport: err = %v, want ErrClosed", err)
	}
	_ = tr0.Close()
}

func TestChannelDoubleJoinRejected(t *testing.T) {
	net := transport.NewChannelNetwork(8)
	tr, err := net.Join(0, func(types.ValidatorID, *engine.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := net.Join(0, func(types.ValidatorID, *engine.Message) {}); err == nil {
		t.Fatal("duplicate join must fail")
	}
}

// newTCPPair boots n TCP endpoints on loopback with full mesh addressing.
func newTCPMesh(t *testing.T, n int) ([]*transport.TCPTransport, []*collector) {
	t.Helper()
	cols := make([]*collector, n)
	trs := make([]*transport.TCPTransport, n)
	addrs := make(map[types.ValidatorID]string, n)

	// First pass: bind listeners on :0 to learn ports.
	for i := 0; i < n; i++ {
		cols[i] = newCollector()
		tr, err := transport.NewTCP(transport.TCPConfig{
			Self:       types.ValidatorID(i),
			ListenAddr: "127.0.0.1:0",
			PeerAddrs:  map[types.ValidatorID]string{}, // filled below via second transport set
			Handler:    cols[i].handler,
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[types.ValidatorID(i)] = tr.Addr()
		trs[i] = tr
	}
	// Rebuild with full peer maps (simpler than dynamic peer injection).
	for i := 0; i < n; i++ {
		_ = trs[i].Close()
	}
	for i := 0; i < n; i++ {
		peers := make(map[types.ValidatorID]string, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				peers[types.ValidatorID(j)] = addrs[types.ValidatorID(j)]
			}
		}
		tr, err := transport.NewTCP(transport.TCPConfig{
			Self:       types.ValidatorID(i),
			ListenAddr: addrs[types.ValidatorID(i)],
			PeerAddrs:  peers,
			Handler:    cols[i].handler,
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		t.Cleanup(func() { _ = tr.Close() })
	}
	return trs, cols
}

func TestTCPSendReceive(t *testing.T) {
	trs, cols := newTCPMesh(t, 2)
	if err := trs[0].Send(1, voteMsg(0, 7)); err != nil {
		t.Fatal(err)
	}
	got := cols[1].waitFor(t, 1, 5*time.Second)
	if got[0].from != 0 || got[0].msg.Kind != engine.KindVote || got[0].msg.Vote.Round != 7 {
		t.Fatalf("received %+v", got[0])
	}
}

func TestTCPBroadcastRoundTrip(t *testing.T) {
	trs, cols := newTCPMesh(t, 4)
	// A full header with payload exercises gob round-tripping of nested
	// structs.
	hdr := &engine.Message{Kind: engine.KindHeader, Header: &engine.Header{
		Round:  3,
		Source: 2,
		Edges:  []types.Digest{types.HashBytes([]byte("e1")), types.HashBytes([]byte("e2"))},
		Batch: &types.Batch{Transactions: []types.Transaction{
			{ID: 42, SubmitTimeNanos: 99, Payload: []byte("payload-bytes")},
		}},
		Signature: []byte("sig"),
	}}
	if err := trs[2].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3} {
		got := cols[i].waitFor(t, 1, 5*time.Second)
		h := got[0].msg.Header
		if h == nil || h.Round != 3 || h.Source != 2 || len(h.Edges) != 2 {
			t.Fatalf("node %d: header mangled: %+v", i, got[0].msg)
		}
		if h.Batch == nil || h.Batch.Transactions[0].ID != 42 ||
			string(h.Batch.Transactions[0].Payload) != "payload-bytes" {
			t.Fatalf("node %d: batch mangled: %+v", i, h.Batch)
		}
		if h.Digest() != hdr.Header.Digest() {
			t.Fatalf("node %d: digest changed across the wire", i)
		}
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	trs, cols := newTCPMesh(t, 2)
	const n = 200
	for i := 0; i < n; i++ {
		if err := trs[0].Send(1, voteMsg(0, types.Round(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := cols[1].waitFor(t, n, 10*time.Second)
	for i, r := range got {
		if r.msg.Vote.Round != types.Round(i) {
			t.Fatalf("message %d has round %d: per-connection FIFO violated", i, r.msg.Vote.Round)
		}
	}
}

func TestTCPUnknownPeerAndClose(t *testing.T) {
	trs, _ := newTCPMesh(t, 2)
	if err := trs[0].Send(7, voteMsg(0, 1)); err == nil {
		t.Fatal("send to unknown peer must fail")
	}
	if err := trs[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(1, voteMsg(0, 1)); err != transport.ErrClosed {
		t.Fatalf("send after close: err = %v, want ErrClosed", err)
	}
	if err := trs[0].Close(); err != nil {
		t.Fatalf("double close must be a no-op, got %v", err)
	}
}

func TestTCPPeerComesUpLate(t *testing.T) {
	// Sender starts with a peer address that is not listening yet; the
	// redial loop must deliver once the peer binds.
	col := newCollector()
	late := newCollector()

	tr0, err := transport.NewTCP(transport.TCPConfig{
		Self:       0,
		ListenAddr: "127.0.0.1:0",
		PeerAddrs:  map[types.ValidatorID]string{},
		Handler:    col.handler,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr0.Close()

	// Reserve a port for the late peer by binding and closing.
	probe, err := transport.NewTCP(transport.TCPConfig{
		Self:       1,
		ListenAddr: "127.0.0.1:0",
		PeerAddrs:  map[types.ValidatorID]string{},
		Handler:    late.handler,
	})
	if err != nil {
		t.Fatal(err)
	}
	lateAddr := probe.Addr()
	_ = probe.Close()

	sender, err := transport.NewTCP(transport.TCPConfig{
		Self:       0,
		ListenAddr: "127.0.0.1:0",
		PeerAddrs:  map[types.ValidatorID]string{1: lateAddr},
		Handler:    col.handler,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// Keep sending while the peer is down; at least the post-bind sends
	// must arrive.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = sender.Send(1, voteMsg(0, types.Round(i)))
			time.Sleep(20 * time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	peer, err := transport.NewTCP(transport.TCPConfig{
		Self:       1,
		ListenAddr: lateAddr,
		PeerAddrs:  map[types.ValidatorID]string{},
		Handler:    late.handler,
	})
	if err != nil {
		t.Fatalf("late peer failed to bind %s: %v", lateAddr, err)
	}
	defer peer.Close()

	late.waitFor(t, 1, 10*time.Second)
	close(stop)
	wg.Wait()
}

func TestTCPAllKindsSurviveGob(t *testing.T) {
	trs, cols := newTCPMesh(t, 2)
	h := engine.Header{Round: 1, Source: 0, Edges: []types.Digest{types.HashBytes([]byte("x"))}}
	msgs := []*engine.Message{
		{Kind: engine.KindHeader, Header: &h},
		{Kind: engine.KindVote, Vote: &engine.Vote{Round: 1, Voter: 0, Origin: 1, HeaderDigest: h.Digest()}},
		{Kind: engine.KindCertificate, Cert: &engine.Certificate{Header: h, Votes: []engine.VoteSig{{Voter: 0, Signature: []byte("s")}}}},
		{Kind: engine.KindCertRequest, CertRequest: &engine.CertRequest{Digests: []types.Digest{h.Digest()}}},
		{Kind: engine.KindCertResponse, CertResponse: &engine.CertResponse{Certs: []*engine.Certificate{{Header: h}}}},
	}
	for _, m := range msgs {
		if err := trs[0].Send(1, m); err != nil {
			t.Fatal(err)
		}
	}
	got := cols[1].waitFor(t, len(msgs), 10*time.Second)
	for i, r := range got {
		if r.msg.Kind != msgs[i].Kind {
			t.Fatalf("message %d kind = %s, want %s", i, r.msg.Kind, msgs[i].Kind)
		}
	}
	// Spot-check deep fields survived.
	if got[2].msg.Cert.Votes[0].Voter != 0 || string(got[2].msg.Cert.Votes[0].Signature) != "s" {
		t.Fatalf("certificate votes mangled: %+v", got[2].msg.Cert)
	}
}

func ExampleChannelNetwork() {
	net := transport.NewChannelNetwork(16)
	done := make(chan struct{})
	_, _ = net.Join(1, func(from types.ValidatorID, msg *engine.Message) {
		fmt.Println("got", msg.Kind, "from", from)
		close(done)
	})
	tr0, _ := net.Join(0, func(types.ValidatorID, *engine.Message) {})
	_ = tr0.Send(1, &engine.Message{Kind: engine.KindVote, Vote: &engine.Vote{}})
	<-done
	// Output: got vote from v0
}

// TestTCPPeerRestartResumesDelivery models the RPC-driven serving scenario:
// a sender keeps submitting at a steady clip while its peer process dies and
// a new transport rebinds the same address. The redial loop must reconnect
// and deliver the post-restart traffic without the sender ever blocking.
func TestTCPPeerRestartResumesDelivery(t *testing.T) {
	colA := newCollector()
	first := newCollector()

	peer1, err := transport.NewTCP(transport.TCPConfig{
		Self: 1, ListenAddr: "127.0.0.1:0",
		PeerAddrs: map[types.ValidatorID]string{},
		Handler:   first.handler,
	})
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := peer1.Addr()

	sender, err := transport.NewTCP(transport.TCPConfig{
		Self: 0, ListenAddr: "127.0.0.1:0",
		PeerAddrs: map[types.ValidatorID]string{1: peerAddr},
		Handler:   colA.handler,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// Sustained submission stream: rounds are a monotone sequence so the
	// receiver can prove post-restart delivery.
	stop := make(chan struct{})
	var sent atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = sender.Send(1, voteMsg(0, types.Round(sent.Add(1))))
			time.Sleep(5 * time.Millisecond)
		}
	}()

	first.waitFor(t, 1, 10*time.Second) // connection established, traffic flows
	if err := peer1.Close(); err != nil {
		t.Fatal(err)
	}
	// The peer is dead for a while; the sender must keep running (drops, no
	// blocking — submissions keep being accepted upstream).
	time.Sleep(300 * time.Millisecond)

	second := newCollector()
	var peer2 *transport.TCPTransport
	for attempt := 0; ; attempt++ {
		peer2, err = transport.NewTCP(transport.TCPConfig{
			Self: 1, ListenAddr: peerAddr,
			PeerAddrs: map[types.ValidatorID]string{},
			Handler:   second.handler,
		})
		if err == nil {
			break
		}
		if attempt > 50 {
			t.Fatalf("rebinding %s: %v", peerAddr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer peer2.Close()

	// The restarted peer must start receiving NEW traffic: a round sent
	// after its rebind has to arrive.
	rebindFloor := types.Round(sent.Load())
	deadline := time.Now().Add(15 * time.Second)
	for {
		got := func() bool {
			second.mu.Lock()
			defer second.mu.Unlock()
			for _, r := range second.msgs {
				if r.msg.Vote.Round > rebindFloor {
					return true
				}
			}
			return false
		}()
		if got {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no post-restart traffic delivered: redial did not resume")
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestTCPSaturatedPeerDropsNewest pins the backpressure contract at a dead
// peer: sends past the outbound queue bound return immediately (drop-newest,
// never block), and once the peer appears only the oldest ~SendQueueLen
// frames are delivered.
func TestTCPSaturatedPeerDropsNewest(t *testing.T) {
	late := newCollector()
	// Reserve an address that is not listening yet.
	probe, err := transport.NewTCP(transport.TCPConfig{
		Self: 1, ListenAddr: "127.0.0.1:0",
		PeerAddrs: map[types.ValidatorID]string{},
		Handler:   late.handler,
	})
	if err != nil {
		t.Fatal(err)
	}
	lateAddr := probe.Addr()
	_ = probe.Close()

	sender, err := transport.NewTCP(transport.TCPConfig{
		Self: 0, ListenAddr: "127.0.0.1:0",
		PeerAddrs: map[types.ValidatorID]string{1: lateAddr},
		Handler:   newCollector().handler,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// Twice the queue bound, all at once. Every Send must return promptly
	// even though nothing is draining.
	total := 2 * transport.SendQueueLen
	start := time.Now()
	for i := 0; i < total; i++ {
		if err := sender.Send(1, voteMsg(0, types.Round(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sends against a saturated peer took %v: Send blocked", elapsed)
	}

	peer, err := transport.NewTCP(transport.TCPConfig{
		Self: 1, ListenAddr: lateAddr,
		PeerAddrs: map[types.ValidatorID]string{},
		Handler:   late.handler,
	})
	if err != nil {
		t.Fatalf("late peer failed to bind: %v", err)
	}
	defer peer.Close()

	late.waitFor(t, 1, 15*time.Second)
	// Give the queue time to drain, then check the drop side: deliveries are
	// bounded by the queue and come from the OLDEST sends (the failed-dial
	// path may drop a few head frames; none may come from past the bound).
	time.Sleep(2 * time.Second)
	late.mu.Lock()
	defer late.mu.Unlock()
	if len(late.msgs) > transport.SendQueueLen {
		t.Fatalf("delivered %d > queue bound %d: overflow was not dropped", len(late.msgs), transport.SendQueueLen)
	}
	for _, r := range late.msgs {
		// Head frames can be consumed by failed dial windows (one per redial
		// delay); everything delivered must come from the first
		// SendQueueLen+headDrops sends, never the overflow tail.
		if r.msg.Vote.Round >= types.Round(transport.SendQueueLen+16) {
			t.Fatalf("round %d delivered: a frame past the queue bound survived (drop-newest violated)", r.msg.Vote.Round)
		}
	}
}
