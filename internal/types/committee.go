package types

import (
	"errors"
	"fmt"
	"sort"
)

// Authority describes one committee member.
type Authority struct {
	// ID is the dense index of the validator in the committee.
	ID ValidatorID
	// Name is a human-readable label (e.g. "validator-7" or a region tag).
	Name string
	// Stake is the validator's voting power. Must be positive.
	Stake Stake
	// PublicKey is the validator's verification key (scheme-dependent).
	PublicKey []byte
	// Address is the network address for real-socket deployments
	// ("host:port"); empty in simulations.
	Address string
}

// Committee is the static validator set of an epoch together with its
// stake-weighted quorum arithmetic. The zero value is not usable; construct
// with NewCommittee.
//
// Thresholds follow the standard BFT model with n > 3f: writes (certificates)
// need QuorumThreshold (>= 2f+1 by stake) and commit votes need
// ValidityThreshold (>= f+1 by stake), where f = MaxFaultyStake.
type Committee struct {
	authorities []Authority
	totalStake  Stake
	maxFaulty   Stake
}

// ErrEmptyCommittee is returned when constructing a committee with no members.
var ErrEmptyCommittee = errors.New("types: committee must have at least one authority")

// NewCommittee validates and builds a committee. Authorities must be provided
// in ID order 0..n-1 with positive stake.
func NewCommittee(authorities []Authority) (*Committee, error) {
	if len(authorities) == 0 {
		return nil, ErrEmptyCommittee
	}
	list := make([]Authority, len(authorities))
	copy(list, authorities)
	var total Stake
	for i := range list {
		if list[i].ID != ValidatorID(i) {
			return nil, fmt.Errorf("types: authority at index %d has ID %s, want v%d", i, list[i].ID, i)
		}
		if list[i].Stake == 0 {
			return nil, fmt.Errorf("types: authority %s has zero stake", list[i].ID)
		}
		total += list[i].Stake
	}
	return &Committee{
		authorities: list,
		totalStake:  total,
		maxFaulty:   (total - 1) / 3,
	}, nil
}

// NewEqualStakeCommittee builds an n-member committee where every validator
// holds one unit of stake — the configuration used in the paper's evaluation.
func NewEqualStakeCommittee(n int) (*Committee, error) {
	authorities := make([]Authority, n)
	for i := range authorities {
		authorities[i] = Authority{
			ID:    ValidatorID(i),
			Name:  fmt.Sprintf("validator-%d", i),
			Stake: 1,
		}
	}
	return NewCommittee(authorities)
}

// Size returns the number of validators.
func (c *Committee) Size() int { return len(c.authorities) }

// TotalStake returns the sum of all stakes.
func (c *Committee) TotalStake() Stake { return c.totalStake }

// MaxFaultyStake returns f, the largest stake the adversary may control
// (f < n/3 in stake units).
func (c *Committee) MaxFaultyStake() Stake { return c.maxFaulty }

// QuorumThreshold returns the minimum stake of a write quorum (2f+1
// equivalent): totalStake - maxFaulty.
func (c *Committee) QuorumThreshold() Stake { return c.totalStake - c.maxFaulty }

// ValidityThreshold returns the minimum stake guaranteeing at least one
// honest member (f+1 equivalent).
func (c *Committee) ValidityThreshold() Stake { return c.maxFaulty + 1 }

// Authority returns the authority with the given ID.
func (c *Committee) Authority(id ValidatorID) (Authority, bool) {
	if int(id) >= len(c.authorities) {
		return Authority{}, false
	}
	return c.authorities[id], true
}

// Stake returns the stake of the given validator, or zero if unknown.
func (c *Committee) Stake(id ValidatorID) Stake {
	if int(id) >= len(c.authorities) {
		return 0
	}
	return c.authorities[id].Stake
}

// Authorities returns a copy of the authority list in ID order.
func (c *Committee) Authorities() []Authority {
	out := make([]Authority, len(c.authorities))
	copy(out, c.authorities)
	return out
}

// ValidatorIDs returns all validator IDs in ascending order.
func (c *Committee) ValidatorIDs() []ValidatorID {
	out := make([]ValidatorID, len(c.authorities))
	for i := range out {
		out[i] = ValidatorID(i)
	}
	return out
}

// StakeOf sums the stake of the given set of validators, counting each
// member once even if repeated.
func (c *Committee) StakeOf(ids []ValidatorID) Stake {
	seen := make(map[ValidatorID]struct{}, len(ids))
	var total Stake
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		total += c.Stake(id)
	}
	return total
}

// StakeAccumulator incrementally tracks distinct-validator stake until a
// threshold is reached. The zero value is not usable; use NewStakeAccumulator.
type StakeAccumulator struct {
	committee *Committee
	seen      map[ValidatorID]struct{}
	total     Stake
}

// NewStakeAccumulator returns an empty accumulator over the committee.
func NewStakeAccumulator(c *Committee) *StakeAccumulator {
	return &StakeAccumulator{
		committee: c,
		seen:      make(map[ValidatorID]struct{}),
	}
}

// Add records the validator's stake (idempotently) and returns the new total.
func (a *StakeAccumulator) Add(id ValidatorID) Stake {
	if _, dup := a.seen[id]; dup {
		return a.total
	}
	a.seen[id] = struct{}{}
	a.total += a.committee.Stake(id)
	return a.total
}

// Total returns the accumulated stake.
func (a *StakeAccumulator) Total() Stake { return a.total }

// Count returns the number of distinct validators recorded.
func (a *StakeAccumulator) Count() int { return len(a.seen) }

// ReachedQuorum reports whether the accumulated stake meets QuorumThreshold.
func (a *StakeAccumulator) ReachedQuorum() bool {
	return a.total >= a.committee.QuorumThreshold()
}

// ReachedValidity reports whether the accumulated stake meets
// ValidityThreshold.
func (a *StakeAccumulator) ReachedValidity() bool {
	return a.total >= a.committee.ValidityThreshold()
}

// SortValidatorIDs sorts IDs ascending in place and returns the slice, for
// deterministic iteration over sets.
func SortValidatorIDs(ids []ValidatorID) []ValidatorID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
