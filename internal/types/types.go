// Package types defines the basic vocabulary shared by every HammerHead
// subsystem: validator identities, stake arithmetic, rounds, digests and
// transactions. It has no dependencies beyond the standard library and is
// imported by every other internal package.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// ValidatorID identifies a validator by its index in the committee. IDs are
// dense: a committee of n validators uses IDs 0..n-1.
type ValidatorID uint32

// String implements fmt.Stringer.
func (v ValidatorID) String() string {
	return fmt.Sprintf("v%d", uint32(v))
}

// NoValidator is a sentinel for "no validator" (e.g. an unassigned leader
// slot). It is never a valid committee member.
const NoValidator ValidatorID = ^ValidatorID(0)

// Stake is the voting power of a validator. All quorum arithmetic in the
// protocol is stake-weighted, matching the paper's model where validators
// "vary in stake and thus leader election frequency".
type Stake uint64

// Round is a DAG round number. Round 0 is the genesis round. Anchor (leader)
// rounds are the even rounds, matching Bullshark's two-round commit cadence.
type Round uint64

// IsAnchorRound reports whether r carries a leader whose vertex can be
// committed (even rounds, per Bullshark).
func (r Round) IsAnchorRound() bool { return r%2 == 0 }

// DigestSize is the byte length of a Digest.
const DigestSize = 32

// Digest is a 32-byte content address (SHA-256) of a protocol object.
type Digest [DigestSize]byte

// ZeroDigest is the all-zero digest, used only as an explicit sentinel.
var ZeroDigest Digest

// String returns the first 8 hex characters, enough for logs.
func (d Digest) String() string {
	return hex.EncodeToString(d[:4])
}

// Hex returns the full hex encoding of the digest.
func (d Digest) Hex() string {
	return hex.EncodeToString(d[:])
}

// IsZero reports whether the digest is the zero sentinel.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// HashBytes hashes an arbitrary byte string into a Digest.
func HashBytes(parts ...[]byte) Digest {
	h := sha256.New()
	for _, p := range parts {
		// Length-prefix every part so concatenation is unambiguous.
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// Transaction is a client transaction flowing through the mempool into DAG
// vertex payloads. SubmitTimeNanos records when the client handed it to a
// validator (virtual time in simulations, wall clock on real nodes) and is
// the basis for end-to-end latency measurements, mirroring the paper's
// definition of latency as submission-to-finality time.
type Transaction struct {
	ID              uint64
	SubmitTimeNanos int64
	Payload         []byte
}

// EncodedSize returns the serialized size of the transaction in bytes,
// used by the bandwidth model and batch caps.
func (t *Transaction) EncodedSize() int {
	return 8 + 8 + 8 + len(t.Payload)
}

// Batch is an ordered group of transactions carried by one vertex.
type Batch struct {
	Transactions []Transaction
}

// EncodedSize returns the serialized size of the batch in bytes.
func (b *Batch) EncodedSize() int {
	n := 8
	for i := range b.Transactions {
		n += b.Transactions[i].EncodedSize()
	}
	return n
}

// Len returns the number of transactions in the batch.
func (b *Batch) Len() int { return len(b.Transactions) }
