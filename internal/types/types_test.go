package types

import (
	"testing"
	"testing/quick"
)

func TestDigestString(t *testing.T) {
	d := HashBytes([]byte("hello"))
	if d.IsZero() {
		t.Fatal("hash of non-empty input must not be zero")
	}
	if got := len(d.Hex()); got != 64 {
		t.Fatalf("Hex() length = %d, want 64", got)
	}
	if got := len(d.String()); got != 8 {
		t.Fatalf("String() length = %d, want 8", got)
	}
}

func TestHashBytesLengthPrefixing(t *testing.T) {
	// ("ab","c") and ("a","bc") must hash differently: parts are
	// length-prefixed, not concatenated.
	d1 := HashBytes([]byte("ab"), []byte("c"))
	d2 := HashBytes([]byte("a"), []byte("bc"))
	if d1 == d2 {
		t.Fatal("length prefixing failed: distinct part splits collide")
	}
}

func TestHashBytesDeterministic(t *testing.T) {
	f := func(a, b []byte) bool {
		return HashBytes(a, b) == HashBytes(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundIsAnchorRound(t *testing.T) {
	cases := []struct {
		round Round
		want  bool
	}{
		{0, true}, {1, false}, {2, true}, {3, false}, {100, true}, {101, false},
	}
	for _, tc := range cases {
		if got := tc.round.IsAnchorRound(); got != tc.want {
			t.Errorf("Round(%d).IsAnchorRound() = %v, want %v", tc.round, got, tc.want)
		}
	}
}

func TestNewCommitteeValidation(t *testing.T) {
	tests := []struct {
		name    string
		auths   []Authority
		wantErr bool
	}{
		{"empty", nil, true},
		{"zero stake", []Authority{{ID: 0, Stake: 0}}, true},
		{"bad ids", []Authority{{ID: 1, Stake: 1}}, true},
		{"ok", []Authority{{ID: 0, Stake: 1}, {ID: 1, Stake: 2}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCommittee(tc.auths)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewCommittee() error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestCommitteeThresholdsEqualStake(t *testing.T) {
	tests := []struct {
		n              int
		wantFaulty     Stake
		wantQuorum     Stake
		wantValidity   Stake
		wantTotalStake Stake
	}{
		{1, 0, 1, 1, 1},
		{4, 1, 3, 2, 4},
		{7, 2, 5, 3, 7},
		{10, 3, 7, 4, 10},
		{50, 16, 34, 17, 50},
		{100, 33, 67, 34, 100},
	}
	for _, tc := range tests {
		c, err := NewEqualStakeCommittee(tc.n)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if got := c.MaxFaultyStake(); got != tc.wantFaulty {
			t.Errorf("n=%d MaxFaultyStake = %d, want %d", tc.n, got, tc.wantFaulty)
		}
		if got := c.QuorumThreshold(); got != tc.wantQuorum {
			t.Errorf("n=%d QuorumThreshold = %d, want %d", tc.n, got, tc.wantQuorum)
		}
		if got := c.ValidityThreshold(); got != tc.wantValidity {
			t.Errorf("n=%d ValidityThreshold = %d, want %d", tc.n, got, tc.wantValidity)
		}
		if got := c.TotalStake(); got != tc.wantTotalStake {
			t.Errorf("n=%d TotalStake = %d, want %d", tc.n, got, tc.wantTotalStake)
		}
	}
}

func TestCommitteeThresholdInvariants(t *testing.T) {
	// Quorum intersection: two quorums overlap in more than f stake, i.e.
	// 2*quorum - total > f. Checked for a range of weighted committees.
	f := func(seed uint32) bool {
		n := int(seed%30) + 1
		auths := make([]Authority, n)
		for i := range auths {
			auths[i] = Authority{ID: ValidatorID(i), Stake: Stake(seed%7) + Stake(i%5) + 1}
		}
		c, err := NewCommittee(auths)
		if err != nil {
			return false
		}
		q, total, faulty := c.QuorumThreshold(), c.TotalStake(), c.MaxFaultyStake()
		return 2*q > total+faulty && c.ValidityThreshold() > faulty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStakeAccumulator(t *testing.T) {
	c, err := NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewStakeAccumulator(c)
	if acc.ReachedValidity() {
		t.Fatal("empty accumulator must not reach validity")
	}
	acc.Add(0)
	acc.Add(0) // duplicate: must not double count
	if got := acc.Total(); got != 1 {
		t.Fatalf("Total = %d, want 1 (duplicates must not count)", got)
	}
	acc.Add(1)
	if !acc.ReachedValidity() {
		t.Fatal("2 of 4 equal-stake validators must reach validity (f+1=2)")
	}
	if acc.ReachedQuorum() {
		t.Fatal("2 of 4 must not reach quorum (2f+1=3)")
	}
	acc.Add(2)
	if !acc.ReachedQuorum() {
		t.Fatal("3 of 4 must reach quorum")
	}
	if got := acc.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestStakeOfCountsDistinct(t *testing.T) {
	c, err := NewEqualStakeCommittee(5)
	if err != nil {
		t.Fatal(err)
	}
	got := c.StakeOf([]ValidatorID{0, 1, 1, 2, 2, 2})
	if got != 3 {
		t.Fatalf("StakeOf = %d, want 3", got)
	}
}

func TestAuthorityLookup(t *testing.T) {
	c, err := NewEqualStakeCommittee(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Authority(2); !ok {
		t.Fatal("authority 2 must exist")
	}
	if _, ok := c.Authority(3); ok {
		t.Fatal("authority 3 must not exist")
	}
	if got := c.Stake(99); got != 0 {
		t.Fatalf("Stake(unknown) = %d, want 0", got)
	}
}

func TestBatchEncodedSize(t *testing.T) {
	b := Batch{Transactions: []Transaction{
		{ID: 1, Payload: make([]byte, 100)},
		{ID: 2, Payload: make([]byte, 50)},
	}}
	want := 8 + (8 + 8 + 8 + 100) + (8 + 8 + 8 + 50)
	if got := b.EncodedSize(); got != want {
		t.Fatalf("EncodedSize = %d, want %d", got, want)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
}
