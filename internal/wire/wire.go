// Package wire is the deterministic binary codec underneath every
// HammerHead byte stream: transport frames, WAL records, snapshots and
// scheduler state. It replaces encoding/gob on those paths, which re-encoded
// type metadata per stream, allocated per field, and — because gob walks
// maps in iteration order — kept inviting nondeterminism into byte streams
// that consensus compares bit for bit.
//
// The codec is deliberately primitive: explicit field order, length-prefixed
// byte strings, fixed-width big-endian integers where the value is usually
// large (rounds, sequence numbers, digests) and varints where it is usually
// small (counts, lengths, scores). There is no reflection, no type
// negotiation and no schema on the hot path; versioning lives in the single
// tag byte each layer prefixes its records with (see the README's "Wire
// format" section for the per-layer layouts and legacy-gob fallback rules).
//
// Decoding is zero-copy where possible: Reader.Bytes returns sub-slices
// aliasing the input buffer, so decoding a message allocates only the
// decoded structs, never a second copy of signatures, batches or snapshot
// chunks. Callers that retain decoded payloads beyond the buffer's life use
// BytesCopy. Every length read is bounds-checked against the bytes actually
// remaining BEFORE any allocation, so a hostile peer declaring a
// multi-gigabyte count costs the decoder nothing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hammerhead/internal/types"
)

// Decode errors. Reader methods never panic on hostile input; the first
// failure sticks and every subsequent read returns the zero value.
var (
	// ErrTruncated reports input that ended before a declared field.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrMalformed reports input that is structurally invalid (a length
	// exceeding the remaining bytes, a non-canonical bool, trailing garbage).
	ErrMalformed = errors.New("wire: malformed input")
)

// ---- encode: append-style helpers ----
//
// Encoders are plain append functions so callers compose them into one
// buffer sized by an EncodedSize estimate, with zero intermediate
// allocations. All of them are deterministic by construction: no maps, no
// clocks, explicit field order.

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends a fixed-width big-endian uint32.
func AppendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

// AppendU64 appends a fixed-width big-endian uint64.
func AppendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// AppendUvarint appends an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends a zigzag-encoded signed varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendBool appends a canonical bool (exactly 0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBytes appends a uvarint length prefix followed by p.
func AppendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendDigest appends the 32 digest bytes with no length prefix (the size
// is part of the format).
func AppendDigest(b []byte, d types.Digest) []byte {
	return append(b, d[:]...)
}

// ---- decode: bounds-checked reader ----

// Reader consumes a wire-encoded buffer. The error model is sticky: after
// the first failure all reads return zero values and Err/Finish report the
// failure, so decoders chain field reads without per-field checks.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader aliases buf; it never
// copies or mutates it.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many bytes are left to read.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns the sticky error, or ErrMalformed if intact input has
// unconsumed trailing bytes — a decoded record must account for every byte,
// otherwise two byte streams could decode to the same value and
// byte-equality arguments (WAL offsets, snapshot digests) break.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take returns the next n bytes as an alias of the input buffer.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.fail(ErrTruncated)
		return nil
	}
	p := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return p
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U32 reads a fixed-width big-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

// U64 reads a fixed-width big-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(fmt.Errorf("%w: uvarint overflow", ErrMalformed))
		}
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(fmt.Errorf("%w: varint overflow", ErrMalformed))
		}
		return 0
	}
	r.off += n
	return v
}

// Bool reads a canonical bool, failing on any byte other than 0 or 1 (a
// non-canonical encoding would make decode∘encode non-identity).
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("%w: non-canonical bool", ErrMalformed))
		return false
	}
}

// Bytes reads a length-prefixed byte string as an alias of the input buffer
// (zero-copy). The declared length is validated against the remaining bytes
// before anything is touched, so no allocation ever happens for a lying
// length.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(fmt.Errorf("%w: declared length %d exceeds %d remaining bytes", ErrMalformed, n, r.Remaining()))
		return nil
	}
	return r.take(int(n))
}

// BytesCopy reads a length-prefixed byte string into a fresh allocation —
// for decoders whose output must outlive the input buffer. A zero-length
// string decodes to nil, matching the encode side's treatment of nil.
func (r *Reader) BytesCopy() []byte {
	p := r.Bytes()
	if len(p) == 0 {
		return nil
	}
	return append([]byte(nil), p...)
}

// Digest reads 32 raw digest bytes.
func (r *Reader) Digest() types.Digest {
	var d types.Digest
	p := r.take(types.DigestSize)
	if p != nil {
		copy(d[:], p)
	}
	return d
}

// Count reads a uvarint element count for a sequence whose elements each
// occupy at least elemMin encoded bytes, and validates it against the
// remaining input: a count that could not possibly fit fails immediately, so
// slice pre-allocation downstream is always bounded by the actual input
// size. elemMin values below 1 are treated as 1.
func (r *Reader) Count(elemMin int) int {
	if elemMin < 1 {
		elemMin = 1
	}
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()/elemMin) {
		r.fail(fmt.Errorf("%w: declared count %d exceeds remaining input", ErrMalformed, n))
		return 0
	}
	return int(n)
}
