package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"hammerhead/internal/types"
)

func TestRoundTripAllPrimitives(t *testing.T) {
	d := types.HashBytes([]byte("digest"))
	var b []byte
	b = AppendU8(b, 0xAB)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, math.MaxUint64)
	b = AppendUvarint(b, 300)
	b = AppendVarint(b, -12345)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendBytes(b, []byte("hello"))
	b = AppendBytes(b, nil)
	b = AppendDigest(b, d)

	r := NewReader(b)
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Fatalf("Varint = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools flipped")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Bytes = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("empty Bytes = %q", got)
	}
	if got := r.Digest(); got != d {
		t.Fatalf("Digest = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestBytesAliasesInput(t *testing.T) {
	b := AppendBytes(nil, []byte("aliased"))
	r := NewReader(b)
	got := r.Bytes()
	b[len(b)-1] = 'X' // mutate the backing buffer
	if string(got) != "aliaseX" {
		t.Fatalf("Bytes did not alias the input buffer: %q", got)
	}

	r2 := NewReader(AppendBytes(nil, []byte("copied")))
	cp := r2.BytesCopy()
	if string(cp) != "copied" {
		t.Fatalf("BytesCopy = %q", cp)
	}
}

func TestTruncationAtEveryPrefix(t *testing.T) {
	var b []byte
	b = AppendU64(b, 7)
	b = AppendBytes(b, []byte("payload"))
	b = AppendU32(b, 9)
	for i := 0; i < len(b); i++ {
		r := NewReader(b[:i])
		r.U64()
		r.Bytes()
		r.U32()
		if r.Finish() == nil {
			t.Fatalf("prefix of %d bytes decoded cleanly", i)
		}
	}
}

func TestLyingLengthFailsBeforeAllocation(t *testing.T) {
	// Declares 1 GiB of payload followed by 2 real bytes: the reader must
	// fail on the declared-vs-remaining check, not attempt to read (or
	// allocate) the gigabyte.
	b := AppendUvarint(nil, 1<<30)
	b = append(b, 0x01, 0x02)
	r := NewReader(b)
	if got := r.Bytes(); got != nil {
		t.Fatalf("Bytes = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", r.Err())
	}
}

func TestCountBoundsPreallocation(t *testing.T) {
	b := AppendUvarint(nil, 1<<40) // absurd element count
	b = append(b, make([]byte, 16)...)
	r := NewReader(b)
	if n := r.Count(8); n != 0 {
		t.Fatalf("Count = %d, want 0", n)
	}
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", r.Err())
	}

	// A count that fits is returned as-is.
	b2 := AppendUvarint(nil, 2)
	b2 = append(b2, make([]byte, 16)...)
	if n := NewReader(b2).Count(8); n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
}

func TestNonCanonicalBoolRejected(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", r.Err())
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	b := AppendU32(nil, 1)
	b = append(b, 0xFF)
	r := NewReader(b)
	r.U32()
	if err := r.Finish(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("Finish = %v, want ErrMalformed", err)
	}
}

func TestStickyErrorStopsAllReads(t *testing.T) {
	r := NewReader([]byte{0x01})
	r.U64() // fails: truncated
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r.Err())
	}
	// Everything after the failure is a zero value, no panic.
	if r.U8() != 0 || r.U32() != 0 || r.Uvarint() != 0 || r.Bytes() != nil || r.Bool() {
		t.Fatal("reads after a sticky error must return zero values")
	}
	if !r.Digest().IsZero() {
		t.Fatal("digest after a sticky error must be zero")
	}
}

func TestVarintExtremes(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		r := NewReader(AppendVarint(nil, v))
		if got := r.Varint(); got != v || r.Finish() != nil {
			t.Fatalf("varint %d round-tripped to %d (err %v)", v, got, r.Finish())
		}
	}
	for _, v := range []uint64{0, 1, 127, 128, math.MaxUint64} {
		r := NewReader(AppendUvarint(nil, v))
		if got := r.Uvarint(); got != v || r.Finish() != nil {
			t.Fatalf("uvarint %d round-tripped to %d (err %v)", v, got, r.Finish())
		}
	}
}

func TestUvarintOverflowRejected(t *testing.T) {
	// 10 continuation bytes overflow a uint64.
	b := bytes.Repeat([]byte{0xFF}, 10)
	b = append(b, 0x7F)
	r := NewReader(b)
	r.Uvarint()
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", r.Err())
	}
}
