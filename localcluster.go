package hammerhead

import (
	"fmt"
	"path/filepath"

	"hammerhead/internal/engine"
	"hammerhead/internal/node"
	"hammerhead/internal/transport"
	"hammerhead/internal/types"
)

// LocalClusterOption customizes StartLocalCluster.
type LocalClusterOption func(*localClusterOptions)

type localClusterOptions struct {
	engineConfig    EngineConfig
	hammerhead      *SchedulerConfig
	walDir          string
	scheme          string
	execution       bool
	snapshotDir     string
	rpc             bool
	rpcLanes        int
	onCommit        func(id ValidatorID, sub CommittedSubDAG, replayed bool)
	metrics         *MetricsRegistry
	metricsTargetID ValidatorID
}

// WithEngineConfig overrides the engine configuration for every node.
func WithEngineConfig(cfg EngineConfig) LocalClusterOption {
	return func(o *localClusterOptions) { o.engineConfig = cfg }
}

// WithHammerHead enables reputation scheduling (nil config means the paper's
// evaluation defaults). Without this option the cluster runs the round-robin
// Bullshark baseline.
func WithHammerHead(cfg *SchedulerConfig) LocalClusterOption {
	return func(o *localClusterOptions) {
		if cfg == nil {
			def := DefaultSchedulerConfig()
			cfg = &def
		}
		o.hammerhead = cfg
	}
}

// WithWALDir enables per-node persistence under dir (one WAL per validator).
func WithWALDir(dir string) LocalClusterOption {
	return func(o *localClusterOptions) { o.walDir = dir }
}

// WithExecution enables the execution subsystem on every node: a
// deterministic KV ledger applies the commit stream, checkpoints
// periodically, and snapshot state-sync recovers nodes that fall beyond the
// GC horizon. snapshotDir, when non-empty, persists each validator's
// checkpoints under its own subdirectory (empty keeps them in memory).
func WithExecution(snapshotDir string) LocalClusterOption {
	return func(o *localClusterOptions) {
		o.execution = true
		o.snapshotDir = snapshotDir
	}
}

// WithRPC serves each node's client gateway on an ephemeral loopback port
// (see RPCAddrs) with the given number of fair-admission mempool lanes
// (<= 1 keeps a single lane). Pair with WithExecution for KV reads.
func WithRPC(lanes int) LocalClusterOption {
	return func(o *localClusterOptions) {
		o.rpc = true
		o.rpcLanes = lanes
	}
}

// WithCommitObserver registers a commit callback across all nodes.
func WithCommitObserver(fn func(id ValidatorID, sub CommittedSubDAG, replayed bool)) LocalClusterOption {
	return func(o *localClusterOptions) { o.onCommit = fn }
}

// WithMetrics attaches a metrics registry to one validator.
func WithMetrics(reg *MetricsRegistry, id ValidatorID) LocalClusterOption {
	return func(o *localClusterOptions) { o.metrics = reg; o.metricsTargetID = id }
}

// WithScheme selects the signature scheme ("ed25519" or "insecure").
func WithScheme(name string) LocalClusterOption {
	return func(o *localClusterOptions) { o.scheme = name }
}

// LocalCluster is an in-process committee wired over channel transports —
// real goroutines, wall-clock timers and the full protocol stack, one
// binary. Useful for development, tests and the quickstart example.
type LocalCluster struct {
	Committee *Committee
	Nodes     []*Node

	network *transport.ChannelNetwork
}

// StartLocalCluster boots an n-validator cluster and returns once all nodes
// run. Callers must Stop it.
func StartLocalCluster(n int, opts ...LocalClusterOption) (*LocalCluster, error) {
	options := localClusterOptions{
		engineConfig: DefaultEngineConfig(),
		scheme:       "ed25519",
	}
	// Local clusters exchange messages in microseconds; production pacing
	// would only slow examples down.
	options.engineConfig.MinRoundDelay = 50 * 1e6 // 50ms
	options.engineConfig.LeaderTimeout = 1e9      // 1s
	// Real runtimes run the two-stage engine pipeline: certificate ingest
	// returns to message processing while the Bullshark walk orders
	// asynchronously. WithEngineConfig overrides (0 = serial).
	options.engineConfig.PipelineDepth = engine.DefaultPipelineDepth
	for _, opt := range opts {
		opt(&options)
	}

	committee, err := NewEqualStakeCommittee(n)
	if err != nil {
		return nil, err
	}
	var seed [32]byte
	seed[0] = 0x42
	pairs, pubs, err := GenerateKeys(options.scheme, seed, n)
	if err != nil {
		return nil, err
	}

	cluster := &LocalCluster{
		Committee: committee,
		network:   transport.NewChannelNetwork(1 << 14),
	}
	for i := 0; i < n; i++ {
		id := types.ValidatorID(i)
		cfg := node.Config{
			Committee:    committee,
			Self:         id,
			Keys:         pairs[i],
			PublicKeys:   pubs,
			Engine:       options.engineConfig,
			HammerHead:   options.hammerhead,
			ScheduleSeed: 7,
		}
		if options.walDir != "" {
			cfg.WALPath = filepath.Join(options.walDir, fmt.Sprintf("validator-%d.wal", i))
		}
		if options.execution {
			cfg.Execution = true
			if options.snapshotDir != "" {
				cfg.SnapshotDir = filepath.Join(options.snapshotDir, fmt.Sprintf("validator-%d", i))
			}
		}
		if options.rpc {
			cfg.RPCAddr = "127.0.0.1:0"
			cfg.MempoolLanes = options.rpcLanes
		}
		if options.onCommit != nil {
			hook := options.onCommit
			cfg.OnCommit = func(sub CommittedSubDAG, replayed bool) { hook(id, sub, replayed) }
		}
		if options.metrics != nil && options.metricsTargetID == id {
			cfg.Metrics = options.metrics
		}

		var nd *node.Node
		tr, err := cluster.network.Join(id, func(from types.ValidatorID, msg *engine.Message) {
			nd.HandleMessage(from, msg)
		})
		if err != nil {
			cluster.Stop()
			return nil, err
		}
		nd, err = node.New(cfg, tr)
		if err != nil {
			_ = tr.Close()
			cluster.Stop()
			return nil, fmt.Errorf("hammerhead: building node %s: %w", id, err)
		}
		cluster.Nodes = append(cluster.Nodes, nd)
	}
	for _, nd := range cluster.Nodes {
		if err := nd.Start(); err != nil {
			cluster.Stop()
			return nil, err
		}
	}
	return cluster, nil
}

// RPCAddrs lists each node's client-gateway base address ("host:port"), in
// validator order. Empty without WithRPC.
func (c *LocalCluster) RPCAddrs() []string {
	var addrs []string
	for _, nd := range c.Nodes {
		if gw := nd.Gateway(); gw != nil {
			addrs = append(addrs, gw.Addr())
		}
	}
	return addrs
}

// Submit hands a transaction to the given validator's mempool.
func (c *LocalCluster) Submit(to ValidatorID, tx Transaction) error {
	if int(to) >= len(c.Nodes) {
		return fmt.Errorf("hammerhead: no validator %s", to)
	}
	return c.Nodes[to].Submit(tx)
}

// Stop shuts every node down.
func (c *LocalCluster) Stop() {
	for _, nd := range c.Nodes {
		if nd != nil {
			_ = nd.Close()
		}
	}
}
