// Package client is the Go client for a HammerHead validator's RPC gateway
// (internal/rpc): transaction submission with retry and multi-validator
// failover, committed-KV reads, node status, and a resumable subscription to
// the commit stream. The load generator (cmd/hammerhead-loadgen) and the
// client-load experiment are built on it.
//
// Failover model: the client holds one base URL per validator gateway and
// rotates deterministically — a request that fails at the network layer, or
// that a gateway answers with a 5xx, moves to the next endpoint; 429 (lane
// backpressure) backs off and retries, eventually also rotating, since
// another validator's lane for this client may have headroom. Submissions are
// NOT idempotent across validators (each validator has its own mempool), so a
// retried submit can commit twice; clients that care deduplicate by
// transaction ID, exactly like any at-least-once ingress.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hammerhead/internal/checkpoint"
	"hammerhead/internal/crypto"
	"hammerhead/internal/execution"
	"hammerhead/internal/types"
	"hammerhead/pkg/rpcapi"
)

// Config parameterizes a Client.
type Config struct {
	// Endpoints are gateway base addresses, one per validator: "host:port" or
	// full "http://host:port" URLs. At least one is required.
	Endpoints []string
	// ClientID names this client for fair admission (the gateway's lane key).
	// Empty lets the gateway fall back to the remote address.
	ClientID string
	// HTTPClient overrides the transport (nil uses a client with sane
	// timeouts for request/response calls; streams strip the timeout).
	HTTPClient *http.Client
	// Attempts bounds the total tries per call across endpoints (0 = twice
	// the endpoint count, so every endpoint is tried at least once with one
	// full failover round).
	Attempts int
	// Backoff is the pause after a 429 before retrying (0 = 50ms). Doubled
	// per consecutive backpressure response, capped at 8x.
	Backoff time.Duration
}

// Client talks to one or more validator gateways. Safe for concurrent use.
type Client struct {
	cfg    Config
	bases  []string
	http   *http.Client
	stream *http.Client
	next   atomic.Uint64
}

// New validates the configuration and builds a client.
func New(cfg Config) (*Client, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("client: at least one endpoint is required")
	}
	bases := make([]string, len(cfg.Endpoints))
	for i, ep := range cfg.Endpoints {
		base := ep
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		u, err := url.Parse(base)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("client: bad endpoint %q", ep)
		}
		bases[i] = strings.TrimRight(base, "/")
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 2 * len(bases)
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	httpClient := cfg.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	// The stream client must not carry a global timeout: an SSE subscription
	// is supposed to stay open. Share the transport, drop the deadline.
	streamClient := &http.Client{Transport: httpClient.Transport}
	return &Client{cfg: cfg, bases: bases, http: httpClient, stream: streamClient}, nil
}

// Endpoints returns the normalized base URLs.
func (c *Client) Endpoints() []string { return append([]string(nil), c.bases...) }

// errBackpressure marks a 429 so the retry loop can back off instead of
// failing over immediately.
type errBackpressure struct{ resp rpcapi.SubmitResponse }

func (errBackpressure) Error() string { return "client: gateway backpressure (429)" }

// do runs one call with rotation and retry. fn performs the request against a
// base URL and reports a retryable error to move on.
func (c *Client) do(ctx context.Context, fn func(base string) error) error {
	start := c.next.Add(1) - 1
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		base := c.bases[(start+uint64(attempt))%uint64(len(c.bases))]
		err := fn(base)
		if err == nil {
			return nil
		}
		lastErr = err
		if errors.As(err, &errBackpressure{}) {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			if backoff < 8*c.cfg.Backoff {
				backoff *= 2
			}
		}
	}
	return lastErr
}

func (c *Client) getJSON(ctx context.Context, base, path string, out any, okStatuses ...int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	allowed := false
	for _, s := range okStatuses {
		if resp.StatusCode == s {
			allowed = true
		}
	}
	if !allowed {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("client: %s%s: status %d: %s", base, path, resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts one batch of raw transaction payloads, assigning IDs is left
// to the gateway. See SubmitTxs for explicit IDs.
func (c *Client) Submit(ctx context.Context, payloads ...[]byte) (rpcapi.SubmitResponse, error) {
	txs := make([]rpcapi.SubmitTx, len(payloads))
	for i, p := range payloads {
		txs[i] = rpcapi.SubmitTx{Payload: p}
	}
	return c.SubmitTxs(ctx, txs)
}

// SubmitTxs posts one batch of transactions, failing over across endpoints
// and backing off on lane backpressure. The returned response is the first
// gateway answer that admitted at least one transaction (or the final
// rejection once attempts are exhausted).
func (c *Client) SubmitTxs(ctx context.Context, txs []rpcapi.SubmitTx) (rpcapi.SubmitResponse, error) {
	body, err := json.Marshal(rpcapi.SubmitRequest{Client: c.cfg.ClientID, Txs: txs})
	if err != nil {
		return rpcapi.SubmitResponse{}, err
	}
	var out rpcapi.SubmitResponse
	err = c.do(ctx, func(base string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/tx", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.cfg.ClientID != "" {
			req.Header.Set("X-Client-ID", c.cfg.ClientID)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return json.NewDecoder(resp.Body).Decode(&out)
		case http.StatusTooManyRequests:
			var rejected rpcapi.SubmitResponse
			_ = json.NewDecoder(resp.Body).Decode(&rejected)
			return errBackpressure{resp: rejected}
		default:
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("client: %s/v1/tx: status %d: %s", base, resp.StatusCode, raw)
		}
	})
	if err != nil {
		var bp errBackpressure
		if errors.As(err, &bp) {
			// Surface the gateway's per-tx rejection detail alongside the error.
			return bp.resp, err
		}
		return rpcapi.SubmitResponse{}, err
	}
	return out, nil
}

// Get reads a key from the committed KV ledger, failing over across
// endpoints. Missing keys return Found=false with a nil error — the cursor
// fields still report where the read landed.
func (c *Client) Get(ctx context.Context, key []byte) (rpcapi.KVResponse, error) {
	var out rpcapi.KVResponse
	err := c.do(ctx, func(base string) error {
		return c.getJSON(ctx, base, "/v1/kv/"+url.PathEscape(string(key)), &out,
			http.StatusOK, http.StatusNotFound)
	})
	return out, err
}

// GetAt reads a key from one specific endpoint (index into Endpoints) — the
// cross-validator convergence checks read the same key everywhere and compare
// state roots.
func (c *Client) GetAt(ctx context.Context, endpoint int, key []byte) (rpcapi.KVResponse, error) {
	var out rpcapi.KVResponse
	base := c.bases[endpoint%len(c.bases)]
	err := c.getJSON(ctx, base, "/v1/kv/"+url.PathEscape(string(key)), &out,
		http.StatusOK, http.StatusNotFound)
	return out, err
}

// Status reads one validator's /v1/status (failing over across endpoints).
func (c *Client) Status(ctx context.Context) (rpcapi.StatusResponse, error) {
	var out rpcapi.StatusResponse
	err := c.do(ctx, func(base string) error {
		return c.getJSON(ctx, base, "/v1/status", &out, http.StatusOK)
	})
	return out, err
}

// StatusAt reads a specific endpoint's status.
func (c *Client) StatusAt(ctx context.Context, endpoint int) (rpcapi.StatusResponse, error) {
	var out rpcapi.StatusResponse
	err := c.getJSON(ctx, c.bases[endpoint%len(c.bases)], "/v1/status", &out, http.StatusOK)
	return out, err
}

// Trace fetches a transaction's commit-path waterfall (GET
// /v1/trace/{txid}), failing over across endpoints. Every validator that
// committed the transaction holds at least the commit-side stages; the one
// that admitted it holds the full waterfall — use TraceAt to interrogate a
// specific node when completeness matters.
func (c *Client) Trace(ctx context.Context, txID uint64) (rpcapi.TraceResponse, error) {
	var out rpcapi.TraceResponse
	err := c.do(ctx, func(base string) error {
		return c.getJSON(ctx, base, "/v1/trace/"+strconv.FormatUint(txID, 10), &out, http.StatusOK)
	})
	return out, err
}

// TraceAt fetches one specific endpoint's trace for a transaction. A 404
// (trace evicted or never seen there) returns an error.
func (c *Client) TraceAt(ctx context.Context, endpoint int, txID uint64) (rpcapi.TraceResponse, error) {
	var out rpcapi.TraceResponse
	err := c.getJSON(ctx, c.bases[endpoint%len(c.bases)],
		"/v1/trace/"+strconv.FormatUint(txID, 10), &out, http.StatusOK)
	return out, err
}

// Checkpoint fetches the newest quorum checkpoint certificate a gateway
// holds (failing over across endpoints). The wire form is returned as-is;
// use rpcapi.CertFromWire + Verifier to vet it.
func (c *Client) Checkpoint(ctx context.Context) (rpcapi.CheckpointCert, error) {
	var out rpcapi.CheckpointCert
	err := c.do(ctx, func(base string) error {
		return c.getJSON(ctx, base, "/v1/checkpoint", &out, http.StatusOK)
	})
	return out, err
}

// CheckpointAt fetches one specific endpoint's newest certificate.
func (c *Client) CheckpointAt(ctx context.Context, endpoint int) (rpcapi.CheckpointCert, error) {
	var out rpcapi.CheckpointCert
	err := c.getJSON(ctx, c.bases[endpoint%len(c.bases)], "/v1/checkpoint", &out, http.StatusOK)
	return out, err
}

// ErrNoSnapshot reports that no endpoint holds a certified snapshot yet —
// normal early in a cluster's life; callers retry after a backoff.
var ErrNoSnapshot = errors.New("client: no certified snapshot available yet")

// Snapshot fetches the raw certified snapshot blob a gateway serves on
// /v1/snapshot (failing over across endpoints). The blob is the execution
// snapshot wire format, certificate embedded; decode with
// execution.DecodeSnapshot and verify the certificate before restoring.
func (c *Client) Snapshot(ctx context.Context) ([]byte, error) {
	var blob []byte
	sawEmpty := false
	err := c.do(ctx, func(base string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/snapshot", nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			blob, err = io.ReadAll(resp.Body)
			return err
		case http.StatusNotFound:
			sawEmpty = true
			return ErrNoSnapshot
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("client: %s/v1/snapshot: status %d: %s", base, resp.StatusCode, body)
		}
	})
	if err != nil && sawEmpty {
		return nil, ErrNoSnapshot
	}
	return blob, err
}

// Verifier holds the committee trust anchor a client checks quorum
// certificates against: the stake distribution and each validator's public
// key. With one, reads verify end-to-end with zero trust in the serving node
// — including a non-voting replica.
type Verifier struct {
	Committee  *types.Committee
	PublicKeys []crypto.PublicKey
	Scheme     crypto.Scheme
}

// VerifyCert checks a certificate's signatures and quorum stake.
func (v *Verifier) VerifyCert(cert *checkpoint.Certificate) error {
	return cert.Verify(v.Committee, v.PublicKeys, v.Scheme)
}

// VerifiedRead is the outcome of a proof-checked read: the value (or proven
// absence) under the quorum-certified checkpoint the certificate names.
type VerifiedRead struct {
	Value   []byte
	Version uint64
	Found   bool
	// Cert is the verified certificate the proof was checked against;
	// Cert.Meta.CommitSeq is the certified sequence the read is valid at.
	Cert *checkpoint.Certificate
}

// VerifiedGet performs a proof-carrying read (GET /v1/kv/{key}?proof=1) and
// verifies everything client-side: the certificate's 2f+1 signatures against
// the Verifier's committee, the Merkle proof's fold to a root, and that root
// + state counters reproducing exactly the certified state digest. Nothing
// the serving node returns is trusted — a forged value, proof or certificate
// fails with an error. Missing keys return Found=false with a nil error
// (provable absence). Fails over across endpoints.
func (c *Client) VerifiedGet(ctx context.Context, v *Verifier, key []byte) (VerifiedRead, error) {
	var out VerifiedRead
	err := c.do(ctx, func(base string) error {
		var err error
		out, err = c.verifiedGet(ctx, base, v, key)
		return err
	})
	return out, err
}

// Freshness bounds how stale a verified read may be. Zero values place no
// bound on that dimension.
type Freshness struct {
	// MinCommitSeq is the lowest acceptable certified commit sequence: the
	// read-your-writes bound a caller derives from a commit-stream event or a
	// previous read's Cert.Meta.CommitSeq.
	MinCommitSeq uint64
	// MinRound is the lowest acceptable certified DAG round.
	MinRound types.Round
}

// ErrStaleRead reports a cryptographically valid answer whose certificate is
// older than the caller's freshness bound — the serving node (typically a
// lagging read replica) has not caught up yet.
var ErrStaleRead = errors.New("client: certified read is older than the freshness bound")

func (f Freshness) check(cert *checkpoint.Certificate) error {
	if cert.Meta.CommitSeq < f.MinCommitSeq {
		return fmt.Errorf("%w: certified commit_seq %d < required %d",
			ErrStaleRead, cert.Meta.CommitSeq, f.MinCommitSeq)
	}
	if cert.Meta.Round < f.MinRound {
		return fmt.Errorf("%w: certified round %d < required %d",
			ErrStaleRead, cert.Meta.Round, f.MinRound)
	}
	return nil
}

// VerifiedGetFresh is VerifiedGet with a max-staleness SLA: after the proof
// and certificate verify, the certified checkpoint must also satisfy fresh,
// or the answer is rejected with ErrStaleRead and the client fails over —
// another validator or replica may hold a newer certified checkpoint. The
// staleness check runs only on proofs that already verified, so a malicious
// node cannot satisfy the bound by inventing a higher sequence.
func (c *Client) VerifiedGetFresh(ctx context.Context, v *Verifier, key []byte, fresh Freshness) (VerifiedRead, error) {
	var out VerifiedRead
	err := c.do(ctx, func(base string) error {
		r, err := c.verifiedGet(ctx, base, v, key)
		if err != nil {
			return err
		}
		if err := fresh.check(r.Cert); err != nil {
			return err
		}
		out = r
		return nil
	})
	return out, err
}

// VerifiedGetAt is VerifiedGet against one specific endpoint (index into
// Endpoints) — convergence checks interrogate each node, replicas included.
func (c *Client) VerifiedGetAt(ctx context.Context, endpoint int, v *Verifier, key []byte) (VerifiedRead, error) {
	return c.verifiedGet(ctx, c.bases[endpoint%len(c.bases)], v, key)
}

func (c *Client) verifiedGet(ctx context.Context, base string, v *Verifier, key []byte) (VerifiedRead, error) {
	var resp rpcapi.KVProofResponse
	if err := c.getJSON(ctx, base, "/v1/kv/"+url.PathEscape(string(key))+"?proof=1", &resp,
		http.StatusOK, http.StatusNotFound); err != nil {
		return VerifiedRead{}, err
	}
	cert, err := rpcapi.CertFromWire(resp.Cert)
	if err != nil {
		return VerifiedRead{}, err
	}
	if err := v.VerifyCert(cert); err != nil {
		return VerifiedRead{}, fmt.Errorf("client: certificate rejected: %w", err)
	}
	proof, err := rpcapi.ProofFromWire(resp.Leaf, resp.Steps)
	if err != nil {
		return VerifiedRead{}, err
	}
	root, entry, err := proof.Verify(key)
	if err != nil {
		return VerifiedRead{}, fmt.Errorf("client: proof rejected: %w", err)
	}
	if execution.StateDigestFrom(resp.StateVersion, resp.StateOpaque, root) != cert.Meta.StateDigest {
		return VerifiedRead{}, errors.New("client: proof root does not reproduce the certified state digest")
	}
	return VerifiedRead{
		Value:   entry.Value,
		Version: entry.Version,
		Found:   entry.Found,
		Cert:    cert,
	}, nil
}

// CommitHandler observes one commit-stream event. Returning an error stops
// the stream and is returned from StreamCommits.
type CommitHandler func(ev rpcapi.CommitEvent) error

// StreamCommits subscribes to the commit stream, resuming after fromSeq
// (0 starts at the live tail of the first connection). The subscription
// reconnects with failover on broken streams, resuming from the last seen
// sequence, until ctx is done or the handler errors. Gap events (history aged
// out of the gateway's ring) are folded in transparently: streaming continues
// from the oldest retained commit.
func (c *Client) StreamCommits(ctx context.Context, fromSeq uint64, fn CommitHandler) error {
	return c.streamCommits(ctx, fromSeq, false, fn)
}

// StreamCommitsFull is StreamCommits with ?full=1: events carry the commit
// digest and the full transaction payloads in application order — the
// re-execution feed read replicas tail.
func (c *Client) StreamCommitsFull(ctx context.Context, fromSeq uint64, fn CommitHandler) error {
	return c.streamCommits(ctx, fromSeq, true, fn)
}

func (c *Client) streamCommits(ctx context.Context, fromSeq uint64, full bool, fn CommitHandler) error {
	last := fromSeq
	seen := fromSeq > 0
	endpoint := int(c.next.Add(1) - 1)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		base := c.bases[endpoint%len(c.bases)]
		err := c.streamOnce(ctx, base, full, &last, &seen, fn)
		switch {
		case err == nil:
			return nil // handler asked to stop
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return err
		}
		var stop errStopStream
		if errors.As(err, &stop) {
			return stop.err
		}
		// Broken stream: fail over and resume from the last seen sequence.
		endpoint++
		select {
		case <-time.After(c.cfg.Backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// errStopStream wraps a handler error (terminal, no reconnect).
type errStopStream struct{ err error }

func (e errStopStream) Error() string { return e.err.Error() }

// streamOnce runs a single SSE connection until it breaks (error) or the
// handler stops it (nil).
func (c *Client) streamOnce(ctx context.Context, base string, full bool, last *uint64, seen *bool, fn CommitHandler) error {
	params := url.Values{}
	if *seen {
		params.Set("from", strconv.FormatUint(*last, 10))
	}
	if full {
		params.Set("full", "1")
	}
	path := base + "/v1/commits"
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.stream.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: %s: stream status %d", path, resp.StatusCode)
	}
	reader := bufio.NewReader(resp.Body)
	var event string
	var data []byte
	for {
		line, err := reader.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && data != nil:
			if event == "commit" {
				var ev rpcapi.CommitEvent
				if err := json.Unmarshal(data, &ev); err == nil {
					*last, *seen = ev.Seq, true
					if err := fn(ev); err != nil {
						return errStopStream{err: err}
					}
				}
			}
			// Gap events only move the resume cursor implicitly: the next
			// commit event's Seq does that for us.
			event, data = "", nil
		}
	}
}

// PutPayload encodes a KV put for the built-in execution state machine.
func PutPayload(key, value []byte) []byte { return execution.PutOp(key, value) }

// DeletePayload encodes a KV delete.
func DeletePayload(key []byte) []byte { return execution.DeleteOp(key) }
