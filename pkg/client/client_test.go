package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hammerhead/pkg/rpcapi"
)

// stubGateway is a minimal in-memory gateway speaking the rpc wire protocol.
type stubGateway struct {
	submits  atomic.Uint64
	rejectN  atomic.Int64 // first N submit calls answer 429
	statusID uint32
}

func (s *stubGateway) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tx", func(w http.ResponseWriter, r *http.Request) {
		n := s.submits.Add(1)
		var req rpcapi.SubmitRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/json")
		if int64(n) <= s.rejectN.Load() {
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(rpcapi.SubmitResponse{Rejected: len(req.Txs)})
			return
		}
		_ = json.NewEncoder(w).Encode(rpcapi.SubmitResponse{Accepted: len(req.Txs)})
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(rpcapi.StatusResponse{Validator: s.statusID, Round: 5})
	})
	mux.HandleFunc("/v1/kv/", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(rpcapi.KVResponse{Key: []byte("k"), Value: []byte("v"), Found: true, AppliedSeq: 3})
	})
	mux.HandleFunc("/v1/commits", func(w http.ResponseWriter, r *http.Request) {
		from := uint64(0)
		fmt.Sscanf(r.URL.Query().Get("from"), "%d", &from)
		flusher := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		for seq := from + 1; seq <= from+3; seq++ {
			data, _ := json.Marshal(rpcapi.CommitEvent{Seq: seq, Round: seq * 2, TxCount: 1})
			fmt.Fprintf(w, "id: %d\nevent: commit\ndata: %s\n\n", seq, data)
		}
		flusher.Flush()
		// Break the stream after three events: the client must reconnect and
		// resume from the last seen sequence.
	})
	return mux
}

func TestClientFailoverToLiveEndpoint(t *testing.T) {
	gw := &stubGateway{statusID: 2}
	live := httptest.NewServer(gw.handler())
	defer live.Close()
	// A dead endpoint: reserve a port, then close the listener.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c, err := New(Config{Endpoints: []string{deadURL, live.URL}, ClientID: "t"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Submit(context.Background(), []byte("p1"), []byte("p2"))
	if err != nil {
		t.Fatalf("submit with one dead endpoint: %v", err)
	}
	if resp.Accepted != 2 {
		t.Fatalf("accepted = %d, want 2", resp.Accepted)
	}
	st, err := c.Status(context.Background())
	if err != nil || st.Validator != 2 {
		t.Fatalf("status = %+v err %v", st, err)
	}
	kv, err := c.Get(context.Background(), []byte("k"))
	if err != nil || !kv.Found || string(kv.Value) != "v" {
		t.Fatalf("get = %+v err %v", kv, err)
	}
}

func TestClientBackoffOn429ThenSucceeds(t *testing.T) {
	gw := &stubGateway{}
	gw.rejectN.Store(2) // first two submit calls bounce
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	c, err := New(Config{Endpoints: []string{srv.URL}, Backoff: time.Millisecond, Attempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Submit(context.Background(), []byte("p"))
	if err != nil {
		t.Fatalf("submit through backpressure: %v", err)
	}
	if resp.Accepted != 1 || gw.submits.Load() != 3 {
		t.Fatalf("accepted = %d after %d attempts, want 1 after 3", resp.Accepted, gw.submits.Load())
	}
}

func TestClientExhaustedBackpressureReturnsError(t *testing.T) {
	gw := &stubGateway{}
	gw.rejectN.Store(1000)
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	c, err := New(Config{Endpoints: []string{srv.URL}, Backoff: time.Millisecond, Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Submit(context.Background(), []byte("p"))
	if err == nil {
		t.Fatal("exhausted retries must error")
	}
	if !errors.As(err, &errBackpressure{}) {
		t.Fatalf("err = %v, want backpressure", err)
	}
	if resp.Rejected != 1 {
		t.Fatalf("rejection detail lost: %+v", resp)
	}
}

func TestClientStreamResumesAcrossReconnects(t *testing.T) {
	gw := &stubGateway{}
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	c, err := New(Config{Endpoints: []string{srv.URL}, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var seqs []uint64
	wantStop := errors.New("enough")
	err = c.StreamCommits(ctx, 0, func(ev rpcapi.CommitEvent) error {
		seqs = append(seqs, ev.Seq)
		if len(seqs) == 7 {
			return wantStop
		}
		return nil
	})
	if !errors.Is(err, wantStop) {
		t.Fatalf("stream err = %v, want handler stop", err)
	}
	// Each connection serves 3 events then breaks; the client must resume
	// 1..3, 4..6, 7 without duplicates or holes.
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("seqs = %v: duplicates or holes across reconnects", seqs)
		}
	}
}

func TestClientRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no endpoints must fail")
	}
	if _, err := New(Config{Endpoints: []string{"://bad"}}); err == nil {
		t.Fatal("bad endpoint must fail")
	}
}
