package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hammerhead/internal/bullshark"
	"hammerhead/internal/checkpoint"
	"hammerhead/internal/crypto"
	"hammerhead/internal/dag"
	"hammerhead/internal/execution"
	"hammerhead/internal/types"
	"hammerhead/pkg/rpcapi"
)

// freshHarness drives a validator-side executor so tests can cut genuinely
// quorum-certified checkpoints at different commit sequences — the staleness
// tests need answers that verify cryptographically and differ only in age.
type freshHarness struct {
	committee *types.Committee
	keys      []crypto.KeyPair
	verifier  *Verifier
	producer  *execution.Executor
	nextSeq   uint64
}

func newFreshHarness(t *testing.T) *freshHarness {
	t.Helper()
	committee, err := types.NewEqualStakeCommittee(4)
	if err != nil {
		t.Fatal(err)
	}
	scheme := crypto.Ed25519{}
	var seed [32]byte
	seed[0] = 0x77
	keys := make([]crypto.KeyPair, 4)
	pubs := make([]crypto.PublicKey, 4)
	for i := range keys {
		kp, err := crypto.NewKeyPair(scheme, seed, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = kp
		pubs[i] = kp.Public
	}
	return &freshHarness{
		committee: committee,
		keys:      keys,
		verifier:  &Verifier{Committee: committee, PublicKeys: pubs, Scheme: scheme},
		producer:  execution.NewExecutor(execution.NewKVState(), execution.Config{CheckpointInterval: 1000}),
	}
}

// commit applies one put to the upstream executor.
func (h *freshHarness) commit(key, value []byte) {
	h.nextSeq++
	round := types.Round(2 * h.nextSeq)
	batch := &types.Batch{Transactions: []types.Transaction{{
		ID: h.nextSeq, Payload: execution.PutOp(key, value),
	}}}
	anchor := dag.NewVertex(round, 0, nil, nil, 0)
	h.producer.ApplyCommit(bullshark.CommittedSubDAG{
		Index:    h.nextSeq,
		Anchor:   anchor,
		Vertices: []*dag.Vertex{dag.NewVertex(round-1, 1, nil, batch, 0), anchor},
	})
}

// certify cuts a checkpoint and attaches a genuine 2f+1 certificate over it.
func (h *freshHarness) certify(t *testing.T) execution.Snapshot {
	t.Helper()
	snap, err := h.producer.ForceCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	m := checkpoint.Meta{
		Round:       snap.Round,
		CommitSeq:   snap.CommitSeq,
		StateRoot:   snap.StateRoot,
		StateDigest: snap.StateDigest,
		SchedDigest: checkpoint.SchedDigestOf(snap.SchedulerState),
	}
	cert := &checkpoint.Certificate{Meta: m}
	for i := 0; i < 3; i++ {
		sh, err := checkpoint.Sign(m, types.ValidatorID(i), h.keys[i])
		if err != nil {
			t.Fatal(err)
		}
		cert.Sigs = append(cert.Sigs, checkpoint.Sig{Validator: sh.Validator, Signature: sh.Signature})
	}
	if !h.producer.AttachCertificate(snap.CommitSeq, cert) {
		t.Fatal("attach failed")
	}
	return snap
}

// proofResponse freezes the executor's current certified proof for key into
// the gateway wire body, exactly as internal/rpc serves it.
func (h *freshHarness) proofResponse(t *testing.T, key []byte) rpcapi.KVProofResponse {
	t.Helper()
	pr, ok := h.producer.ProvenRead(key)
	if !ok {
		t.Fatal("no proven read — certificate not attached?")
	}
	_, entry, err := pr.Proof.Verify(key)
	if err != nil {
		t.Fatal(err)
	}
	leaf, steps := rpcapi.ProofToWire(pr.Proof)
	return rpcapi.KVProofResponse{
		Key: key, Value: entry.Value, Found: entry.Found,
		Leaf: leaf, Steps: steps,
		StateVersion: pr.Version, StateOpaque: pr.Opaque,
		Cert: rpcapi.CertToWire(pr.Cert),
	}
}

// serveProof is a single-purpose gateway: every proof-carrying KV read gets
// the frozen response, like a replica that stopped catching up.
func serveProof(resp rpcapi.KVProofResponse, hits *atomic.Uint64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
}

// TestVerifiedGetFreshFailsOverFromLaggingReplica pins the replica-lag
// behavior: a stale replica's answer verifies cryptographically (it IS
// genuinely certified) but misses the freshness bound, so the client rejects
// it with ErrStaleRead and retries on the next endpoint, which holds a newer
// certified checkpoint.
func TestVerifiedGetFreshFailsOverFromLaggingReplica(t *testing.T) {
	h := newFreshHarness(t)
	key := []byte("acct")

	h.commit(key, []byte("v1"))
	staleSnap := h.certify(t)
	staleResp := h.proofResponse(t, key)

	h.commit(key, []byte("v2"))
	freshSnap := h.certify(t)
	freshResp := h.proofResponse(t, key)

	var staleHits, freshHits atomic.Uint64
	stale := serveProof(staleResp, &staleHits)
	defer stale.Close()
	fresh := serveProof(freshResp, &freshHits)
	defer fresh.Close()

	ctx := context.Background()

	// Unbounded: the first (stale) endpoint's certified answer is accepted.
	c, err := New(Config{Endpoints: []string{stale.URL, fresh.URL}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.VerifiedGetFresh(ctx, h.verifier, key, Freshness{})
	if err != nil {
		t.Fatalf("unbounded read: %v", err)
	}
	if r.Cert.Meta.CommitSeq != staleSnap.CommitSeq || string(r.Value) != "v1" {
		t.Fatalf("unbounded read got seq %d value %q; want the stale replica's seq %d v1",
			r.Cert.Meta.CommitSeq, r.Value, staleSnap.CommitSeq)
	}

	// Bounded: a fresh client starts at the stale endpoint again, rejects its
	// certified-but-old answer, and fails over to the fresh one.
	c2, err := New(Config{Endpoints: []string{stale.URL, fresh.URL}})
	if err != nil {
		t.Fatal(err)
	}
	r, err = c2.VerifiedGetFresh(ctx, h.verifier, key, Freshness{MinCommitSeq: freshSnap.CommitSeq})
	if err != nil {
		t.Fatalf("bounded read with a fresh endpoint available: %v", err)
	}
	if r.Cert.Meta.CommitSeq != freshSnap.CommitSeq || string(r.Value) != "v2" {
		t.Fatalf("bounded read got seq %d value %q; want seq %d v2",
			r.Cert.Meta.CommitSeq, r.Value, freshSnap.CommitSeq)
	}
	if staleHits.Load() == 0 {
		t.Fatal("bounded read never touched the stale replica — failover untested")
	}
	if freshHits.Load() == 0 {
		t.Fatal("bounded read never reached the fresh replica")
	}
}

// TestVerifiedGetFreshAllStaleReturnsErrStaleRead: when every endpoint lags
// the bound, the read fails with ErrStaleRead rather than silently returning
// old state — and the same holds for a round bound.
func TestVerifiedGetFreshAllStaleReturnsErrStaleRead(t *testing.T) {
	h := newFreshHarness(t)
	key := []byte("acct")
	h.commit(key, []byte("v1"))
	snap := h.certify(t)
	resp := h.proofResponse(t, key)

	srv := serveProof(resp, nil)
	defer srv.Close()
	c, err := New(Config{Endpoints: []string{srv.URL}, Attempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := c.VerifiedGetFresh(ctx, h.verifier, key, Freshness{MinCommitSeq: snap.CommitSeq + 1}); !errors.Is(err, ErrStaleRead) {
		t.Fatalf("seq-bounded read on a stale cluster: err = %v, want ErrStaleRead", err)
	}
	if _, err := c.VerifiedGetFresh(ctx, h.verifier, key, Freshness{MinRound: snap.Round + 1}); !errors.Is(err, ErrStaleRead) {
		t.Fatalf("round-bounded read on a stale cluster: err = %v, want ErrStaleRead", err)
	}
	// The bound at exactly the certified point is satisfiable.
	if _, err := c.VerifiedGetFresh(ctx, h.verifier, key, Freshness{MinCommitSeq: snap.CommitSeq, MinRound: snap.Round}); err != nil {
		t.Fatalf("exact-bound read: %v", err)
	}
}
