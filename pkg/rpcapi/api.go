// Package rpcapi defines the wire types of the validator's client gateway
// (internal/rpc) — the JSON bodies of POST /v1/tx, GET /v1/kv, GET
// /v1/status and the SSE commit-stream events. They live outside internal/
// so external consumers of hammerhead/pkg/client can name them; the gateway
// aliases them, so the two can never drift.
//
// The gateway itself:
// an HTTP/JSON API for transaction submission, committed-state reads,
// commit-stream subscription and node status. It is the first surface through
// which anything outside the validator process reaches the consensus core —
// the serving layer the ROADMAP's "heavy traffic from millions of users"
// north star needs.
//
// Endpoints:
//
//	POST /v1/tx        — submit a batch of transactions (fair-admission lanes
//	                     keyed by client ID; 429 + per-tx errors on lane
//	                     backpressure)
//	GET  /v1/kv/{key}  — read the executor's KV ledger: value + write version
//	                     + applied commit seq + chained state root, one
//	                     consistent cursor; ?proof=1 adds a Merkle
//	                     inclusion/exclusion proof plus the quorum checkpoint
//	                     certificate for zero-trust client-side verification
//	GET  /v1/commits   — Server-Sent Events stream of committed transactions,
//	                     resumable from a sequence number (?from= or
//	                     Last-Event-ID); ?full=1 carries payloads + commit
//	                     digests so replicas can re-execute
//	GET  /v1/checkpoint — the latest quorum checkpoint certificate (2f+1
//	                     signatures over the checkpoint tuple)
//	GET  /v1/snapshot  — the latest certified snapshot blob (replica
//	                     bootstrap)
//	GET  /v1/status    — round, frontier, rejoining, snapshot floor, mempool
//	                     lane depths; replica:true on the read tier
//	GET  /v1/trace/{txid} — a transaction's commit-path waterfall: one
//	                     wall-clock timestamp per lifecycle stage (admitted,
//	                     proposed, cert_formed, ordered, durable, streamed,
//	                     applied), recorded by the serving node's tracer
//	GET  /metrics      — Prometheus text exposition (when a registry is
//	                     attached)
//
// The wire types below are shared with pkg/client, so the Go client library
// and the gateway can never drift apart.
package rpcapi

// SubmitTx is one transaction in a submission batch. Payload is opaque to
// consensus; the built-in KV state machine executes execution.PutOp /
// execution.DeleteOp encodings and counts everything else as an opaque op.
type SubmitTx struct {
	// ID is the client-chosen transaction identifier, echoed in commit-stream
	// events so clients can match submissions to finality. 0 lets the gateway
	// assign one.
	ID      uint64 `json:"id,omitempty"`
	Payload []byte `json:"payload"`
}

// SubmitRequest is the POST /v1/tx body.
type SubmitRequest struct {
	// Client identifies the submitter for fair admission (lane selection).
	// Empty falls back to the X-Client-ID header, then the remote address.
	Client string     `json:"client,omitempty"`
	Txs    []SubmitTx `json:"txs"`
}

// SubmitResponse reports per-batch admission results.
type SubmitResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// Errors lists the rejected transactions by batch index ("mempool: pool
	// is full" under lane backpressure — the client should back off).
	Errors []SubmitError `json:"errors,omitempty"`
	// Lane is the admission lane the client's transactions were routed to.
	Lane int `json:"lane"`
}

// SubmitError names one rejected transaction.
type SubmitError struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// KVResponse is the GET /v1/kv/{key} body: a point read plus the consistency
// cursor it was taken under. Two validators returning the same (applied_seq,
// state_root) pair served reads from identical applied histories.
type KVResponse struct {
	Key     []byte `json:"key"`
	Value   []byte `json:"value,omitempty"`
	Found   bool   `json:"found"`
	Version uint64 `json:"version,omitempty"`
	// AppliedSeq and StateRoot are the executor's cursor at read time.
	AppliedSeq   uint64 `json:"applied_seq"`
	AppliedRound uint64 `json:"applied_round"`
	StateRoot    string `json:"state_root"`
}

// CheckpointSig is one validator's signature inside a CheckpointCert.
type CheckpointSig struct {
	Validator uint32 `json:"validator"`
	Signature []byte `json:"signature"`
}

// CheckpointCert is the JSON form of a quorum checkpoint certificate
// (internal/checkpoint.Certificate): 2f+1 validator signatures over one
// checkpoint tuple. Served on GET /v1/checkpoint and embedded in proof
// responses; digests are hex encoded.
type CheckpointCert struct {
	Round       uint64          `json:"round"`
	CommitSeq   uint64          `json:"commit_seq"`
	StateRoot   string          `json:"state_root"`
	StateDigest string          `json:"state_digest"`
	SchedDigest string          `json:"sched_digest"`
	Sigs        []CheckpointSig `json:"sigs"`
}

// ProofStep is one inner node on a Merkle proof's root-to-leaf path: the
// split-bit index and the hex digest of the sibling subtree.
type ProofStep struct {
	Bit     uint16 `json:"bit"`
	Sibling string `json:"sibling"`
}

// ProofLeaf is the entry a Merkle proof path terminates at. For an inclusion
// proof its Key equals the requested key; for an exclusion proof it is the
// unrelated entry the key's descent lands on (absent entirely when the
// certified state is empty).
type ProofLeaf struct {
	Key     []byte `json:"key"`
	Value   []byte `json:"value,omitempty"`
	Version uint64 `json:"version,omitempty"`
}

// KVProofResponse is the GET /v1/kv/{key}?proof=1 body: a proof-carrying
// read against the serving node's last quorum-certified checkpoint. A
// verifying client MUST ignore the convenience Value/Found fields and instead
// fold Steps+Leaf to a root, combine it with the state counters
// (execution.StateDigestFrom) and compare against Cert.StateDigest after
// checking Cert's signatures — then nothing the serving node says is trusted.
type KVProofResponse struct {
	Key   []byte `json:"key"`
	Value []byte `json:"value,omitempty"`
	Found bool   `json:"found"`
	// Leaf and Steps are the Merkle inclusion/exclusion proof (root → leaf).
	Leaf  *ProofLeaf  `json:"leaf,omitempty"`
	Steps []ProofStep `json:"steps,omitempty"`
	// StateVersion and StateOpaque are the certified state's op counters,
	// which bind the Merkle root into the certified state digest.
	StateVersion uint64 `json:"state_version"`
	StateOpaque  uint64 `json:"state_opaque"`
	// Cert is the quorum certificate the proof verifies against.
	Cert CheckpointCert `json:"cert"`
}

// LaneStatus is one admission lane's view in /v1/status.
type LaneStatus struct {
	Lane      int    `json:"lane"`
	Depth     int    `json:"depth"`
	Cap       int    `json:"cap"`
	Weight    int    `json:"weight"`
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Drained   uint64 `json:"drained"`
}

// ValidatorScore is one validator's reputation score in /v1/status.
type ValidatorScore struct {
	Validator uint32 `json:"validator"`
	Score     int64  `json:"score"`
}

// StatusResponse is the GET /v1/status body.
type StatusResponse struct {
	Validator uint32 `json:"validator"`
	// Replica is true when the serving node is a non-voting read replica
	// (validator-only fields like Round stay zero; Validator echoes the
	// validator the replica redirects submissions to, if any).
	Replica bool `json:"replica,omitempty"`
	// Round is the engine's current proposing round; HighestRound the DAG
	// frontier; LastOrdered the committer's ordering floor.
	Round        uint64 `json:"round"`
	HighestRound uint64 `json:"highest_round"`
	LastOrdered  uint64 `json:"last_ordered_round"`
	// Rejoining is true while the crash-rejoin handshake is still gathering.
	Rejoining bool `json:"rejoining"`
	// Execution cursor (zero values when the execution subsystem is off).
	AppliedSeq   uint64 `json:"applied_seq"`
	AppliedRound uint64 `json:"applied_round"`
	StateRoot    string `json:"state_root,omitempty"`
	// SnapshotFloor is the latest checkpoint's retention floor (0 = no
	// checkpoint yet).
	SnapshotFloor uint64 `json:"snapshot_floor"`
	// Commits counts ordered sub-DAGs delivered since boot (replayed ones
	// included).
	Commits uint64 `json:"commits"`
	// Leader-scheduling state. ScheduleEpoch counts schedule switches (always
	// 0 under the round-robin baseline, which never switches);
	// ScheduleStartRound is the active schedule's first round; CurrentLeader
	// is the leader of the next anchor round at or after Round.
	// SchedulerScores and ExcludedValidators report the reputation scores and
	// exclusions that drove the latest switch (HammerHead only).
	ScheduleEpoch      uint64           `json:"schedule_epoch"`
	ScheduleStartRound uint64           `json:"schedule_start_round"`
	CurrentLeader      uint32           `json:"current_leader"`
	SchedulerScores    []ValidatorScore `json:"scheduler_scores,omitempty"`
	ExcludedValidators []uint32         `json:"excluded_validators,omitempty"`
	// Mempool occupancy and per-lane admission state.
	MempoolPending  int          `json:"mempool_pending"`
	MempoolCapacity int          `json:"mempool_capacity"`
	Lanes           []LaneStatus `json:"lanes,omitempty"`
}

// CommitEvent is one SSE event on GET /v1/commits: an ordered sub-DAG's
// identity plus the IDs of the transactions it finalized. StateRoot is the
// executor's chained root at this sequence when already applied ("" while
// execution still trails the commit stream, or without execution).
type CommitEvent struct {
	Seq       uint64   `json:"seq"`
	Round     uint64   `json:"round"`
	TxCount   int      `json:"tx_count"`
	TxIDs     []uint64 `json:"tx_ids,omitempty"`
	StateRoot string   `json:"state_root,omitempty"`
	// CommitDigest is the hex content address of the commit (sequence, anchor
	// and ordered vertex set — see execution.CommitDigestOf). Replicas chain
	// H(prev, digest) over it to reproduce the executor's state root.
	CommitDigest string `json:"commit_digest,omitempty"`
	// Payloads carries the commit's full transaction payloads in application
	// order. Only populated on GET /v1/commits?full=1 — the re-execution feed
	// read replicas tail; plain subscribers get the lighter event.
	Payloads [][]byte `json:"payloads,omitempty"`
}

// GapEvent is sent on the commit stream when the requested resume point has
// aged out of the gateway's retained history: the client missed the range
// (from, oldest) and the stream continues from Oldest.
type GapEvent struct {
	// Oldest is the first sequence still retained; streaming resumes there.
	Oldest uint64 `json:"oldest"`
}

// TraceStage is one recorded lifecycle stage in a GET /v1/trace/{txid}
// waterfall. Stages arrive in causal order; TimeNanos is the serving
// node's wall clock (UnixNano) when that stage fired.
type TraceStage struct {
	Stage     string `json:"stage"`
	TimeNanos int64  `json:"time_unix_nanos"`
}

// TraceResponse is the GET /v1/trace/{txid} body. Stages lists only the
// stages this node recorded: the validator that admitted the transaction
// holds the full waterfall (admitted → … → streamed/applied, all from its
// own clock); its peers hold the commit-side suffix (ordered onward).
// Replayed commits after a restart record nothing — a recovered node never
// fabricates pre-crash timestamps.
type TraceResponse struct {
	TxID   uint64       `json:"tx_id"`
	Stages []TraceStage `json:"stages"`
	// Complete is true when every stage through the end of this node's
	// commit path (streamed, plus applied when execution is enabled) was
	// recorded with monotonically non-decreasing timestamps.
	Complete bool `json:"complete"`
}
