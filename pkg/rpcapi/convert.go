package rpcapi

import (
	"encoding/hex"
	"fmt"

	"hammerhead/internal/checkpoint"
	"hammerhead/internal/crypto"
	"hammerhead/internal/merkle"
	"hammerhead/internal/types"
)

// This file converts between the gateway's JSON wire forms and the internal
// checkpoint/merkle types, so the gateway (encoding) and pkg/client plus the
// replica (decoding + verifying) share one definition of the trustless-read
// wire format and can never drift.

// DigestToHex encodes a digest for the wire.
func DigestToHex(d types.Digest) string { return hex.EncodeToString(d[:]) }

// DigestFromHex parses a hex digest, insisting on the exact digest length.
func DigestFromHex(s string) (types.Digest, error) {
	var d types.Digest
	raw, err := hex.DecodeString(s)
	if err != nil {
		return d, fmt.Errorf("rpcapi: bad digest hex: %w", err)
	}
	if len(raw) != len(d) {
		return d, fmt.Errorf("rpcapi: digest is %d bytes, want %d", len(raw), len(d))
	}
	copy(d[:], raw)
	return d, nil
}

// CertToWire encodes a checkpoint certificate for JSON serving.
func CertToWire(c *checkpoint.Certificate) CheckpointCert {
	w := CheckpointCert{
		Round:       uint64(c.Meta.Round),
		CommitSeq:   c.Meta.CommitSeq,
		StateRoot:   DigestToHex(c.Meta.StateRoot),
		StateDigest: DigestToHex(c.Meta.StateDigest),
		SchedDigest: DigestToHex(c.Meta.SchedDigest),
		Sigs:        make([]CheckpointSig, len(c.Sigs)),
	}
	for i, s := range c.Sigs {
		w.Sigs[i] = CheckpointSig{Validator: uint32(s.Validator), Signature: s.Signature}
	}
	return w
}

// CertFromWire parses a JSON certificate back into the verifiable internal
// form. Parsing does NOT vet it — call Certificate.Verify against a committee
// before trusting anything it certifies.
func CertFromWire(w CheckpointCert) (*checkpoint.Certificate, error) {
	root, err := DigestFromHex(w.StateRoot)
	if err != nil {
		return nil, fmt.Errorf("rpcapi: cert state_root: %w", err)
	}
	digest, err := DigestFromHex(w.StateDigest)
	if err != nil {
		return nil, fmt.Errorf("rpcapi: cert state_digest: %w", err)
	}
	sched, err := DigestFromHex(w.SchedDigest)
	if err != nil {
		return nil, fmt.Errorf("rpcapi: cert sched_digest: %w", err)
	}
	c := &checkpoint.Certificate{
		Meta: checkpoint.Meta{
			Round:       types.Round(w.Round),
			CommitSeq:   w.CommitSeq,
			StateRoot:   root,
			StateDigest: digest,
			SchedDigest: sched,
		},
		Sigs: make([]checkpoint.Sig, len(w.Sigs)),
	}
	for i, s := range w.Sigs {
		c.Sigs[i] = checkpoint.Sig{
			Validator: types.ValidatorID(s.Validator),
			Signature: crypto.Signature(s.Signature),
		}
	}
	return c, nil
}

// ProofToWire encodes a Merkle proof for JSON serving.
func ProofToWire(p merkle.Proof) (leaf *ProofLeaf, steps []ProofStep) {
	if p.Leaf != nil {
		leaf = &ProofLeaf{Key: p.Leaf.Key, Value: p.Leaf.Value, Version: p.Leaf.Version}
	}
	steps = make([]ProofStep, len(p.Steps))
	for i, s := range p.Steps {
		steps[i] = ProofStep{Bit: s.Bit, Sibling: DigestToHex(s.Sibling)}
	}
	return leaf, steps
}

// ProofFromWire parses a JSON proof back into the verifiable internal form.
func ProofFromWire(leaf *ProofLeaf, steps []ProofStep) (merkle.Proof, error) {
	var p merkle.Proof
	if leaf != nil {
		p.Leaf = &merkle.ProofLeaf{Key: leaf.Key, Value: leaf.Value, Version: leaf.Version}
	}
	p.Steps = make([]merkle.ProofStep, len(steps))
	for i, s := range steps {
		sib, err := DigestFromHex(s.Sibling)
		if err != nil {
			return merkle.Proof{}, fmt.Errorf("rpcapi: proof step %d: %w", i, err)
		}
		p.Steps[i] = merkle.ProofStep{Bit: s.Bit, Sibling: sib}
	}
	return p, nil
}
