package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

var atomicptrAnalyzer = &Analyzer{
	Name: "atomicptr",
	Doc: "a field accessed through sync/atomic functions must never also be " +
		"read or written directly",
	Run: runAtomicptr,
}

func runAtomicptr(p *Pass) {
	// Pass 1: fields whose address is taken by a sync/atomic call.
	atomicFields := make(map[*types.Var]token.Pos)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.Info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			sig, _ := callee.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				return true // methods on atomic.X types are safe by construction
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if field := fieldOf(p, u.X); field != nil {
					if _, seen := atomicFields[field]; !seen {
						atomicFields[field] = call.Pos()
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other selector touching those fields is a mixed access —
	// unless it is itself the &-operand of a sync/atomic call, or the base
	// value was freshly constructed in the same function (initialization
	// before the value is shared).
	for _, file := range p.Files {
		atomicArgs := make(map[ast.Expr]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.Info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
					atomicArgs[ast.Unparen(u.X)] = true
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasDirective(fd, "ignore") {
				continue
			}
			constructed := collectConstructed(p, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				field := fieldOf(p, sel)
				if field == nil {
					return true
				}
				firstAtomic, ok := atomicFields[field]
				if !ok || atomicArgs[sel] {
					return true
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && constructed[obj] {
						return true
					}
				}
				if p.ignoredPos(sel.Pos()) {
					return true
				}
				p.reportf("atomicptr", sel.Sel.Pos(),
					"field %s is accessed with sync/atomic at %s but non-atomically here (mixed access is a data race)",
					field.Name(), p.Fset.Position(firstAtomic))
				return true
			})
		}
	}
}

// fieldOf resolves an expression to the struct field it selects, or nil.
func fieldOf(p *Pass, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selection.Obj().(*types.Var)
	return v
}
