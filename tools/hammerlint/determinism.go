package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "functions reachable from //hammerlint:deterministic roots must not " +
		"reach wall clocks, ambient randomness, order-dependent map iteration " +
		"or gob map encoding",
	Run: runDeterminism,
}

func runDeterminism(p *Pass) {
	t := p.propagateTaint(
		func(n *funcNode) []sink { return n.detSinks },
		func(f *pkgFacts) []factEntry { return f.Tainted },
		nil,
	)
	p.reportFromRoots("determinism",
		func(n *funcNode) bool { return n.deterministic },
		func(n *funcNode) []sink { return n.detSinks },
		t,
	)
	p.Export.Tainted = p.exportTaintFacts(t)
}

// randAllowed are math/rand package-level constructors that are themselves
// deterministic: randomness only appears once a source is seeded, and an
// explicitly seeded source is deterministic by design (the repo's shared-seed
// schedule shuffle depends on exactly that).
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// timeBanned are time package functions that read the wall clock.
var timeBanned = map[string]bool{"Now": true, "Since": true, "Until": true}

// scanCall classifies one call site: records the call edge for taint
// propagation and any direct determinism sink.
func (p *Pass) scanCall(node *funcNode, call *ast.CallExpr, inGoroutine bool) {
	callee := calleeOf(p.Info, call)
	if callee != nil {
		node.calls = append(node.calls, callEdge{
			callee:    callee,
			iface:     isInterfaceCall(p.Info, call),
			goroutine: inGoroutine,
			pos:       call.Pos(),
		})
	}
	if callee == nil || callee.Pkg() == nil {
		return
	}
	pkgPath := callee.Pkg().Path()
	sig, _ := callee.Type().(*types.Signature)
	topLevel := sig != nil && sig.Recv() == nil

	switch {
	case pkgPath == "time" && topLevel && timeBanned[callee.Name()]:
		p.addDetSink(node, call, fmt.Sprintf("calls time.%s (wall clock in deterministic code)", callee.Name()))

	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && topLevel && !randAllowed[callee.Name()]:
		p.addDetSink(node, call, fmt.Sprintf("calls %s.%s (ambient process-seeded randomness)", pkgPath, callee.Name()))

	case pkgPath == "maps" && topLevel && (callee.Name() == "Keys" || callee.Name() == "Values" || callee.Name() == "All"):
		if !p.exemptMapIter[call] {
			p.addDetSink(node, call, fmt.Sprintf("iterates a map via maps.%s in unspecified order (wrap in slices.Sorted or sort the result)", callee.Name()))
		}

	case pkgPath == "slices" && topLevel &&
		(callee.Name() == "Sorted" || callee.Name() == "SortedFunc" || callee.Name() == "SortedStableFunc"):
		// slices.Sorted(maps.Keys(m)) is the canonical sorted-iteration
		// idiom: exempt the directly wrapped iterator call.
		if p.exemptMapIter == nil {
			p.exemptMapIter = make(map[*ast.CallExpr]bool)
		}
		for _, arg := range call.Args {
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				p.exemptMapIter[inner] = true
			}
		}

	case pkgPath == "encoding/gob" && callee.Name() == "Encode" && !topLevel:
		for _, arg := range call.Args {
			tv, ok := p.Info.Types[arg]
			if !ok {
				continue
			}
			if path := mapPath(tv.Type); path != "" {
				p.addDetSink(node, call, fmt.Sprintf(
					"gob-encodes %s which contains a map (%s): gob serializes maps in iteration order; flatten to a sorted slice first", tv.Type, path))
			}
		}
	}
}

// addDetSink files a determinism sink unless suppressed by an ignore line.
func (p *Pass) addDetSink(node *funcNode, at ast.Node, desc string) {
	if p.ignoredPos(at.Pos()) {
		return
	}
	node.detSinks = append(node.detSinks, sink{pos: at.Pos(), desc: desc})
}

// scanRange flags `for range m` over a map unless the body is
// order-independent (the collect-then-sort idiom and commutative
// accumulation) or suppressed.
func (p *Pass) scanRange(node *funcNode, rng *ast.RangeStmt) {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	keyName := ""
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}
	if p.orderIndependentBody(rng.Body, keyName) {
		return
	}
	p.addDetSink(node, rng, fmt.Sprintf(
		"iterates map %s in unspecified order with an order-dependent body (collect keys and sort, or //hammerlint:ignore with a reason)", tv.Type))
}

// orderIndependentBody reports whether every statement in a map-range body
// is insensitive to iteration order: append-only accumulation (to be sorted
// afterwards), integer +=, counters, deletes, per-key map stores, and
// branches built only from those (the conditional-prune idiom). keyName is
// the range's key variable ("" when absent/blank).
func (p *Pass) orderIndependentBody(body *ast.BlockStmt, keyName string) bool {
	for _, stmt := range body.List {
		if !p.orderIndependentStmt(stmt, keyName) {
			return false
		}
	}
	return true
}

func (p *Pass) orderIndependentStmt(stmt ast.Stmt, keyName string) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true // counters: n++ / n--
	case *ast.AssignStmt:
		return p.orderIndependentAssign(s, keyName)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		_, builtin := p.Info.Uses[id].(*types.Builtin)
		return builtin && id.Name == "delete"
	case *ast.BlockStmt:
		return p.orderIndependentBody(s, keyName)
	case *ast.IfStmt:
		if s.Init != nil && !p.orderIndependentStmt(s.Init, keyName) {
			return false
		}
		if !p.orderIndependentBody(s.Body, keyName) {
			return false
		}
		return s.Else == nil || p.orderIndependentStmt(s.Else, keyName)
	}
	return false
}

// orderIndependentAssign accepts `x = append(x, ...)`, `x += <integer>`, and
// `m[k] = ...` where k is the range's own key variable (range keys are
// distinct, so per-key stores cannot interfere across iterations — the
// map-copy idiom).
func (p *Pass) orderIndependentAssign(s *ast.AssignStmt, keyName string) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	switch s.Tok.String() {
	case "=", ":=":
		if keyName != "" {
			if idx, ok := ast.Unparen(s.Lhs[0]).(*ast.IndexExpr); ok {
				id, isIdent := ast.Unparen(idx.Index).(*ast.Ident)
				tv, hasType := p.Info.Types[idx.X]
				if isIdent && id.Name == keyName && hasType {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						return true
					}
				}
			}
		}
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return false
		}
		// append target must be the assignment target: x = append(x, ...)
		return types.ExprString(s.Lhs[0]) == types.ExprString(call.Args[0])
	case "+=", "|=":
		tv, ok := p.Info.Types[s.Lhs[0]]
		if !ok {
			return false
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		return ok && basic.Info()&types.IsInteger != 0
	}
	return false
}

// mapPath returns a short description of where a map hides inside t
// ("" = no map). Depth-limited and cycle-safe.
func mapPath(t types.Type) string {
	path, found := mapPathRec(t, make(map[types.Type]bool), 0)
	switch {
	case !found:
		return ""
	case path == "":
		return "the value itself"
	default:
		return "field " + path
	}
}

func mapPathRec(t types.Type, seen map[types.Type]bool, depth int) (string, bool) {
	if depth > 6 || seen[t] {
		return "", false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Map:
		return "", true
	case *types.Pointer:
		return mapPathRec(u.Elem(), seen, depth+1)
	case *types.Slice:
		return mapPathRec(u.Elem(), seen, depth+1)
	case *types.Array:
		return mapPathRec(u.Elem(), seen, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if sub, found := mapPathRec(f.Type(), seen, depth+1); found {
				if sub != "" {
					return f.Name() + "." + sub, true
				}
				return f.Name(), true
			}
		}
	}
	return "", false
}
