// Command hammerlint is the repo's invariant linter: a multi-analyzer vet
// tool that machine-checks the determinism and concurrency contracts every
// correctness claim in this reproduction rests on (bit-equal chained state
// roots, byte-equal ManagerState encodings, identical post-recovery leader
// schedules).
//
// It runs two ways:
//
//	go vet -vettool=$(go env GOPATH)/bin/hammerlint ./...   # vet protocol
//	go run ./tools/hammerlint ./...                          # standalone
//
// Both modes run the same four analyzers:
//
//	determinism  Functions reachable from a //hammerlint:deterministic root
//	             must not call time.Now/Since/Until, package-level math/rand
//	             functions (explicitly seeded *rand.Rand methods are allowed
//	             — they are deterministic), iterate a map in an
//	             order-dependent way without the sorted-keys idiom, or
//	             gob-encode a map-bearing value (gob serializes maps in
//	             iteration order). Taint propagates through the static call
//	             graph, across packages via facts, and through interface
//	             method calls to known-tainted implementations.
//	guardedby    Struct fields annotated "// guarded by <mu>" must only be
//	             read with <mu> (or its read half) held and written with the
//	             full lock held, in the same function. Functions whose name
//	             ends in "Locked" are assumed to be called with the lock
//	             held. Composite-literal construction in the same function is
//	             exempt (the value is not shared yet).
//	atomicptr    A field passed to sync/atomic functions (&s.f) anywhere in
//	             the package must never also be read or written directly —
//	             mixed atomic/plain access is a data race even when it
//	             "mostly works".
//	sendblock    Functions reachable from a //hammerlint:nonblocking root
//	             must not perform a bare blocking channel send (ch <- v
//	             outside any select). Sends inside a select — whether guarded
//	             by a default case or a quit/backpressure case — follow the
//	             bounded-queue discipline and pass.
//
// Annotation vocabulary (directive comments, no space after //):
//
//	//hammerlint:deterministic   declares a determinism root (on a func)
//	//hammerlint:nonblocking     declares a no-blocking-send root (on a func)
//	//hammerlint:ignore [why]    on a func: exclude it from analysis and
//	                             taint propagation entirely; on the line of
//	                             (or the line before) a statement: suppress
//	                             diagnostics for that statement
//	// guarded by <mu>           on a struct field: accesses require the
//	                             sibling mutex field <mu>
//
// Known, deliberate approximations: calls through function-typed variables
// are not tracked; guardedby is flow-insensitive inside branches (a lock
// acquired in only one arm of an if does not count as held afterwards);
// closures inherit the lock state of their definition point except `go`
// closures, which start lock-free. The //hammerlint:ignore escape hatch is
// the pressure valve — every use should say why.
package main
