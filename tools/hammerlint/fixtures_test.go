package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectation is one `// want "regexp"` comment in a fixture file.
type expectation struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	text    string
	matched bool
}

// TestFixtures runs each analyzer over its fixture package under
// testdata/src (a self-contained module) and matches the produced
// diagnostics against the fixtures' `// want` comments, analysistest-style:
// every diagnostic must be wanted, every want must be hit.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name      string   // fixture package directory
		analyzers []string // analyzers whose union of diagnostics must match the wants
	}{
		{"determ", []string{"determinism"}},
		{"determcross", []string{"determinism"}}, // sinks in determdep, roots here: facts propagation
		{"wirecodec", []string{"determinism"}},   // append-style binary encoders (the internal/wire idiom)
		{"guarded", []string{"guardedby"}},
		{"atomicmix", []string{"atomicptr"}},
		{"sendblk", []string{"sendblock"}},
		// The trace-collector contract needs both halves at once: the record
		// path is nonblocking AND determinism-tainted by its internal clock
		// read.
		{"obs", []string{"determinism", "sendblock"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var enabled []*Analyzer
			for _, a := range allAnalyzers() {
				for _, name := range tc.analyzers {
					if a.Name == name {
						enabled = append(enabled, a)
					}
				}
			}
			if len(enabled) != len(tc.analyzers) {
				t.Fatalf("resolved %d of %d analyzers %v", len(enabled), len(tc.analyzers), tc.analyzers)
			}
			results, err := loadAndAnalyze(enabled, []string{"./" + tc.name}, filepath.Join("testdata", "src"))
			if err != nil {
				t.Fatal(err)
			}
			var diags []Diagnostic
			for _, r := range results {
				diags = append(diags, r.Diags...)
			}
			wants := parseWants(t, filepath.Join("testdata", "src", tc.name))
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want comments", tc.name)
			}

			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.matched && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text)
				}
			}
		})
	}
}

// parseWants extracts `// want "re" "re"...` expectations from every Go file
// in dir. Patterns may be double- or back-quoted.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(line[idx+len("// want "):])
			for rest != "" {
				q, err := strconv.QuotedPrefix(rest)
				if err != nil {
					t.Fatalf("%s:%d: malformed want pattern %q: %v", e.Name(), i+1, rest, err)
				}
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: %v", e.Name(), i+1, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", e.Name(), i+1, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re, text: pat})
				rest = strings.TrimSpace(rest[len(q):])
			}
		}
	}
	return wants
}

// TestRepoIsClean runs every analyzer over the real repository: the
// annotated roots in internal/... must produce zero findings. This is the
// same check CI runs through `go vet -vettool=`.
func TestRepoIsClean(t *testing.T) {
	results, err := loadAndAnalyze(allAnalyzers(), []string{"./..."}, filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	analyzed := make(map[string]bool, len(results))
	for _, r := range results {
		analyzed[r.Path] = true
		for _, d := range r.Diags {
			t.Errorf("%s", d)
		}
	}
	// The wire codec underlies every deterministic encoder; a rename or
	// build-tag slip that drops it from analysis would silently void the
	// repo-clean guarantee where it matters most.
	for _, path := range []string{"hammerhead/internal/wire", "hammerhead/internal/engine", "hammerhead/internal/storage"} {
		if !analyzed[path] {
			t.Errorf("%s was not analyzed — the repo-clean check no longer covers it", path)
		}
	}
}

// TestVetToolProtocol builds the hammerlint binary and drives it through
// cmd/go's vettool protocol (-V=full / -flags / cfg-file handshakes): clean
// on the real repo, failing with findings on the fixture module.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "hammerlint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building hammerlint: %v\n%s", err, out)
	}

	clean := exec.Command("go", "vet", "-vettool="+bin, "./...")
	clean.Dir = filepath.Join("..", "..")
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on the repo should be clean: %v\n%s", err, out)
	}

	dirty := exec.Command("go", "vet", "-vettool="+bin, "./...")
	dirty.Dir = filepath.Join("testdata", "src")
	out, err := dirty.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on the fixture module should fail\n%s", out)
	}
	for _, analyzer := range []string{"determinism:", "guardedby:", "atomicptr:", "sendblock:"} {
		if !strings.Contains(string(out), analyzer) {
			t.Errorf("fixture vet output missing %s findings:\n%s", analyzer, out)
		}
	}
}
