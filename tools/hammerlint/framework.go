package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// modulePath is the module whose packages hammerlint fully analyzes.
// Packages outside it (the standard library) are treated as trusted leaves,
// checked only against the built-in denylists in determinism.go.
const modulePath = "hammerhead"

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one invariant check. Run inspects a type-checked package and
// reports findings through pass.Report.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// allAnalyzers is the registry, in reporting order.
func allAnalyzers() []*Analyzer {
	return []*Analyzer{determinismAnalyzer, guardedbyAnalyzer, atomicptrAnalyzer, sendblockAnalyzer}
}

// Pass carries one package's parse/type-check products plus imported facts
// through every analyzer. Analyzers append exported facts for downstream
// packages onto Export.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Report func(Diagnostic)

	// Facts imported from dependency packages, keyed by package path.
	Imported map[string]*pkgFacts
	// Export accumulates this package's facts.
	Export *pkgFacts

	// ignoreLines maps filename -> set of lines carrying //hammerlint:ignore.
	ignoreLines map[string]map[int]bool

	// nodes is the per-function call/sink graph shared by the taint
	// analyzers; built lazily by callGraph().
	nodes map[*types.Func]*funcNode

	// exemptMapIter marks maps.Keys/Values/All calls wrapped directly in
	// slices.Sorted* — the canonical sorted-iteration idiom.
	exemptMapIter map[*ast.CallExpr]bool
}

func newPass(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported map[string]*pkgFacts, report func(Diagnostic)) *Pass {
	p := &Pass{
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		Imported: imported,
		Export:   &pkgFacts{},
		Report:   report,
	}
	p.ignoreLines = make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//hammerlint:ignore") {
					pos := fset.Position(c.Pos())
					m := p.ignoreLines[pos.Filename]
					if m == nil {
						m = make(map[int]bool)
						p.ignoreLines[pos.Filename] = m
					}
					m[pos.Line] = true
				}
			}
		}
	}
	return p
}

// reportf formats and files a diagnostic at pos unless the line is ignored.
func (p *Pass) reportf(analyzer string, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignoredLine(position) {
		return
	}
	p.Report(Diagnostic{Pos: position, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)})
}

// ignoredLine reports whether the node at position is covered by an
// //hammerlint:ignore comment on the same line or the line directly above.
func (p *Pass) ignoredLine(pos token.Position) bool {
	m := p.ignoreLines[pos.Filename]
	return m != nil && (m[pos.Line] || m[pos.Line-1])
}

// ignoredPos is ignoredLine for a raw token.Pos.
func (p *Pass) ignoredPos(pos token.Pos) bool {
	return p.ignoredLine(p.Fset.Position(pos))
}

// hasDirective reports whether the func decl's doc comment carries the given
// //hammerlint:<name> directive.
func hasDirective(decl *ast.FuncDecl, name string) bool {
	if decl.Doc == nil {
		return false
	}
	want := "//hammerlint:" + name
	for _, c := range decl.Doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// ---- facts ----

// factEntry marks one function or method of an analyzed package as carrying
// a property (non-determinism, may-block) for cross-package propagation.
type factEntry struct {
	Recv   string // receiver named-type name; "" for a plain function
	Name   string // function or method name
	Reason string // human-readable cause chain ending at the sink position
}

// pkgFacts is the per-package fact file hammerlint writes (gob in vet mode,
// in-memory in standalone mode).
type pkgFacts struct {
	Tainted  []factEntry // determinism: transitively reaches a sink
	Blocking []factEntry // sendblock: transitively performs a bare send
}

// factKey identifies a function across packages.
func factKey(pkgPath, recv, name string) string {
	if recv != "" {
		return pkgPath + ".(" + recv + ")." + name
	}
	return pkgPath + "." + name
}

// symKey canonicalizes a *types.Func into a cross-package key.
func symKey(f *types.Func) string {
	pkgPath := ""
	if f.Pkg() != nil {
		pkgPath = f.Pkg().Path()
	}
	return factKey(pkgPath, recvName(f), f.Name())
}

// recvName returns the receiver's named-type name, or "".
func recvName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// displayName renders a function for diagnostics: pkg.Func or (pkg.T).Method.
func displayName(f *types.Func) string {
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Name() + "."
	}
	if r := recvName(f); r != "" {
		return "(" + pkg + r + ")." + f.Name()
	}
	return pkg + f.Name()
}

// inModule reports whether the package path belongs to the analyzed module.
func inModule(path string) bool {
	return underModule(path, modulePath)
}

// underModule reports whether pkgPath belongs to the module modPath.
func underModule(pkgPath, modPath string) bool {
	return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// calleeOf resolves the static callee of a call, or nil (builtins, function
// values, type conversions).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified package function (pkg.F).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isInterfaceCall reports whether the call dispatches through an interface.
func isInterfaceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	_, isIface := s.Recv().Underlying().(*types.Interface)
	return isIface
}
