package main

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

var guardedbyAnalyzer = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated \"// guarded by <mu>\" must be accessed with the " +
		"named sibling mutex held in the same function",
	Run: runGuardedby,
}

// guardedRe matches the field annotation, e.g. "// guarded by mu".
var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// lockMode is how strongly a mutex is held.
type lockMode int

const (
	lockNone lockMode = iota
	lockRead          // RLock
	lockFull          // Lock
)

func runGuardedby(p *Pass) {
	guards := collectGuardedFields(p)
	if len(guards) == 0 {
		return
	}
	c := &guardChecker{p: p, guards: guards}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasDirective(fd, "ignore") {
				continue
			}
			// Functions named *Locked are called with the lock already held.
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			c.constructed = collectConstructed(p, fd)
			c.stmts(fd.Body.List, map[string]lockMode{})
		}
	}
}

// collectGuardedFields maps annotated field objects to the guard's sibling
// field name, validating that the guard exists and is mutex-shaped.
func collectGuardedFields(p *Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := fieldAnnotation(field)
				if guard == "" {
					continue
				}
				if !structHasMutexField(p, st, guard) {
					for _, name := range field.Names {
						p.reportf("guardedby", field.Pos(),
							"field %s is annotated \"guarded by %s\" but the struct has no mutex field %s", name.Name, guard, guard)
					}
					continue
				}
				for _, name := range field.Names {
					if obj, ok := p.Info.Defs[name].(*types.Var); ok {
						out[obj] = guard
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldAnnotation extracts the guard name from a field's doc or line comment.
func fieldAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structHasMutexField reports whether the struct literally declares a field
// with the given name whose type is a sync (RW)Mutex or pointer to one.
func structHasMutexField(p *Pass, st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				if tv, ok := p.Info.Types[f.Type]; ok {
					return isMutexType(tv.Type)
				}
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// collectConstructed returns identifiers assigned from composite literals in
// this function — freshly built values no other goroutine can see yet.
func collectConstructed(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			e := ast.Unparen(rhs)
			if u, ok := e.(*ast.UnaryExpr); ok {
				e = ast.Unparen(u.X)
			}
			if _, ok := e.(*ast.CompositeLit); !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := p.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// guardChecker walks a function's statements tracking held locks.
type guardChecker struct {
	p           *Pass
	guards      map[*types.Var]string
	constructed map[types.Object]bool
}

// stmts processes a statement list sequentially. Lock state acquired inside
// nested control flow does not escape the branch (conservative).
func (c *guardChecker) stmts(list []ast.Stmt, held map[string]lockMode) {
	for _, stmt := range list {
		c.stmt(stmt, held)
	}
}

func copyHeld(held map[string]lockMode) map[string]lockMode {
	out := make(map[string]lockMode, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *guardChecker) stmt(s ast.Stmt, held map[string]lockMode) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && c.lockCall(call, held, false) {
			return
		}
		c.expr(s.X, held, false)
	case *ast.DeferStmt:
		// Deferred unlocks keep the lock held for the rest of the function.
		if c.isUnlockCall(s.Call) {
			return
		}
		for _, a := range s.Call.Args {
			c.expr(a, held, false)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(lit.Body.List, copyHeld(held))
		} else {
			c.expr(s.Call.Fun, held, false)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.expr(a, held, false)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A spawned goroutine must take its own locks.
			c.stmts(lit.Body.List, map[string]lockMode{})
		} else {
			c.expr(s.Call.Fun, held, false)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r, held, false)
		}
		for _, l := range s.Lhs {
			c.writeTarget(l, held)
		}
	case *ast.IncDecStmt:
		c.writeTarget(s.X, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, held, false)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held, false)
		c.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.expr(s.Cond, held, false)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
		c.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		c.expr(s.X, held, false)
		c.stmts(s.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		c.stmts(s.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held, false)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.stmt(cc.Comm, copyHeld(held))
				}
				c.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SendStmt:
		c.expr(s.Chan, held, false)
		c.expr(s.Value, held, false)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, held, false)
					}
				}
			}
		}
	}
}

// lockCall updates held state for mu.Lock()/RLock()/Unlock()/RUnlock() calls
// on struct mutex fields; returns true when the call was lock bookkeeping.
func (c *guardChecker) lockCall(call *ast.CallExpr, held map[string]lockMode, unlockOnly bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	method := sel.Sel.Name
	if method != "Lock" && method != "RLock" && method != "Unlock" && method != "RUnlock" {
		return false
	}
	if tv, ok := c.p.Info.Types[sel.X]; !ok || !isMutexType(tv.Type) {
		return false
	}
	key := types.ExprString(ast.Unparen(sel.X))
	switch method {
	case "Lock":
		if !unlockOnly {
			held[key] = lockFull
		}
	case "RLock":
		if !unlockOnly {
			if held[key] < lockRead {
				held[key] = lockRead
			}
		}
	case "Unlock", "RUnlock":
		delete(held, key)
	}
	return true
}

// isUnlockCall reports whether the call is mu.Unlock()/RUnlock() on a mutex.
func (c *guardChecker) isUnlockCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	tv, ok := c.p.Info.Types[sel.X]
	return ok && isMutexType(tv.Type)
}

// writeTarget checks an assignment target, then its sub-expressions.
func (c *guardChecker) writeTarget(e ast.Expr, held map[string]lockMode) {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		c.checkAccess(sel, held, true)
		c.expr(sel.X, held, false)
		return
	}
	if idx, ok := e.(*ast.IndexExpr); ok {
		// m[k] = v writes through the container: the container field itself
		// needs the write lock.
		c.writeTarget(idx.X, held)
		c.expr(idx.Index, held, false)
		return
	}
	c.expr(e, held, false)
}

// expr scans an expression for guarded-field reads (and &-escapes, which
// count as writes). FuncLits inherit the lock state of their definition
// point (sort.Slice-under-lock and friends).
func (c *guardChecker) expr(e ast.Expr, held map[string]lockMode, addressed bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		c.checkAccess(e, held, addressed)
		c.expr(e.X, held, false)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			c.expr(e.X, held, true)
			return
		}
		c.expr(e.X, held, false)
	case *ast.CallExpr:
		if c.lockCall(e, held, false) {
			return
		}
		c.expr(e.Fun, held, false)
		for _, a := range e.Args {
			c.expr(a, held, false)
		}
	case *ast.FuncLit:
		c.stmts(e.Body.List, copyHeld(held))
	case *ast.ParenExpr:
		c.expr(e.X, held, addressed)
	case *ast.StarExpr:
		c.expr(e.X, held, false)
	case *ast.BinaryExpr:
		c.expr(e.X, held, false)
		c.expr(e.Y, held, false)
	case *ast.IndexExpr:
		c.expr(e.X, held, false)
		c.expr(e.Index, held, false)
	case *ast.SliceExpr:
		c.expr(e.X, held, false)
		c.expr(e.Low, held, false)
		c.expr(e.High, held, false)
		c.expr(e.Max, held, false)
	case *ast.TypeAssertExpr:
		c.expr(e.X, held, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.expr(kv.Value, held, false)
				continue
			}
			c.expr(el, held, false)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Value, held, false)
	}
}

// checkAccess verifies one selector access against the annotation table.
func (c *guardChecker) checkAccess(sel *ast.SelectorExpr, held map[string]lockMode, write bool) {
	selection, ok := c.p.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, ok := c.guards[field]
	if !ok {
		return
	}
	base := ast.Unparen(sel.X)
	if id, ok := base.(*ast.Ident); ok {
		if obj := c.p.Info.Uses[id]; obj != nil && c.constructed[obj] {
			return // freshly constructed in this function, not shared yet
		}
	}
	key := types.ExprString(base) + "." + guard
	mode := held[key]
	if c.p.ignoredPos(sel.Pos()) {
		return
	}
	switch {
	case mode == lockNone:
		verb := "read"
		if write {
			verb = "write to"
		}
		c.p.reportf("guardedby", sel.Sel.Pos(),
			"%s %s.%s guarded by %q without holding %s", verb, types.ExprString(base), field.Name(), guard, key)
	case write && mode == lockRead:
		c.p.reportf("guardedby", sel.Sel.Pos(),
			"write to %s.%s guarded by %q while holding only %s.RLock (writes need the full lock)", types.ExprString(base), field.Name(), guard, key)
	}
}
