package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"regexp"
	"strings"
)

// parseFiles parses Go source files with comments (annotations live there).
func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newExportImporter builds a types.Importer that reads gc export data files:
// importMap translates source import paths to canonical package paths (may
// be nil for identity), packageFile maps canonical paths to export data
// files. A single underlying gc importer instance caches packages across
// calls, so it must be reused for a whole load session.
func newExportImporter(fset *token.FileSet, importMap map[string]string, packageFile map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	gc := importer.ForCompiler(fset, "gc", lookup)
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		return gc.Import(path)
	})
}

// goVersionRe matches language versions types.Config accepts ("go1.24").
var goVersionRe = regexp.MustCompile(`^go\d+(\.\d+)*$`)

// typecheck runs go/types over parsed files with full info maps.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect via returned error; keep going
	}
	if goVersionRe.MatchString(strings.TrimSpace(goVersion)) {
		cfg.GoVersion = strings.TrimSpace(goVersion)
	}
	pkg, err := cfg.Check(path, fset, files, info)
	return pkg, info, err
}

// analyzePackage runs the enabled analyzers over one type-checked package
// and returns its diagnostics plus exported facts.
func analyzePackage(enabled []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported map[string]*pkgFacts) ([]Diagnostic, *pkgFacts) {
	var diags []Diagnostic
	pass := newPass(fset, files, pkg, info, imported, func(d Diagnostic) { diags = append(diags, d) })
	for _, a := range enabled {
		a.Run(pass)
	}
	sortDiagnostics(diags)
	return diags, pass.Export
}
