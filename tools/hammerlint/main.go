package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	// cmd/go handshakes before running the tool: `-V=full` for the content
	// ID that keys the build cache, `-flags` for the flag inventory.
	args := os.Args[1:]
	if len(args) == 1 && args[0] == "-V=full" {
		printVersion()
		return
	}
	fs := flag.NewFlagSet("hammerlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hammerlint [-determinism] [-guardedby] [-atomicptr] [-sendblock] [packages]\n")
		fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(command -v hammerlint) ./...\n\n")
		fs.PrintDefaults()
	}
	selected := make(map[string]*bool)
	for _, a := range allAnalyzers() {
		selected[a.Name] = fs.Bool(a.Name, false, "run only the "+a.Name+" analyzer (default: all)")
	}
	flagsMode := fs.Bool("flags", false, "print the flag inventory as JSON (cmd/go handshake)")
	_ = fs.Parse(args)

	if *flagsMode {
		printFlags(fs)
		return
	}

	var enabled []*Analyzer
	for _, a := range allAnalyzers() {
		if *selected[a.Name] {
			enabled = append(enabled, a)
		}
	}
	if len(enabled) == 0 {
		enabled = allAnalyzers()
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		runUnitchecker(enabled, rest[0])
		return
	}
	if n := runStandalone(enabled, rest); n > 0 {
		fmt.Fprintf(os.Stderr, "hammerlint: %d finding(s)\n", n)
		os.Exit(2)
	}
}

// printVersion implements the `-V=full` handshake: cmd/go derives the tool's
// cache key from this line, so it must change whenever the binary does.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	progname = strings.TrimSuffix(progname, ".exe")
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// printFlags implements the `-flags` handshake: cmd/go asks for the tool's
// flags so it can split `go vet` arguments into flags and packages.
func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		flags = append(flags, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
	})
	data, _ := json.MarshalIndent(flags, "", "\t")
	os.Stdout.Write(data)
}
