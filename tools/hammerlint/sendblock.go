package main

var sendblockAnalyzer = &Analyzer{
	Name: "sendblock",
	Doc: "functions reachable from //hammerlint:nonblocking roots must not " +
		"perform bare blocking channel sends outside a select",
	Run: runSendblock,
}

func runSendblock(p *Pass) {
	// Calls made on spawned goroutines do not block the caller, so they
	// carry no blocking taint.
	edgeOK := func(e callEdge) bool { return !e.goroutine }
	t := p.propagateTaint(
		func(n *funcNode) []sink { return n.blockSinks },
		func(f *pkgFacts) []factEntry { return f.Blocking },
		edgeOK,
	)
	p.reportFromRoots("sendblock",
		func(n *funcNode) bool { return n.nonblocking },
		func(n *funcNode) []sink { return n.blockSinks },
		t,
	)
	p.Export.Blocking = p.exportTaintFacts(t)
}
