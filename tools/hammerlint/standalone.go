package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the standalone loader
// needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Deps       []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepOnly    bool
}

// loadResult is one analyzed package from a standalone run.
type loadResult struct {
	Path  string
	Diags []Diagnostic
}

// runStandalone drives the analyzers over `go list` patterns without cmd/go
// vet orchestration: packages load from export data, module packages are
// re-parsed from source and analyzed in dependency order with in-memory
// facts, so cross-package taint propagation is always complete. Returns the
// number of diagnostics printed.
func runStandalone(enabled []*Analyzer, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	results, err := loadAndAnalyze(enabled, patterns, "")
	if err != nil {
		fatalf("%v", err)
	}
	total := 0
	for _, res := range results {
		for _, d := range res.Diags {
			fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
			total++
		}
	}
	return total
}

// loadAndAnalyze lists patterns (relative to dir when non-empty), analyzes
// every module package in dependency order, and returns per-package
// diagnostics for the packages the patterns named directly.
func loadAndAnalyze(enabled []*Analyzer, patterns []string, dir string) ([]loadResult, error) {
	pkgs, err := goList(patterns, dir)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listPkg, len(pkgs))
	exportFile := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, nil, exportFile)

	facts := make(map[string]*pkgFacts)
	var results []loadResult
	for _, p := range topoOrder(pkgs, byPath) {
		// Analyze only packages that belong to a module (skips the standard
		// library); the fixture module under testdata/ flows through the same
		// path as the real repo.
		if p.Standard || p.Module == nil || !underModule(p.ImportPath, p.Module.Path) {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		var paths []string
		for _, f := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, f))
		}
		files, err := parseFiles(fset, paths)
		if err != nil {
			return nil, err
		}
		pkg, info, err := typecheck(fset, p.ImportPath, files, imp, "")
		if err != nil && pkg == nil {
			return nil, fmt.Errorf("typechecking %s: %v", p.ImportPath, err)
		}
		imported := make(map[string]*pkgFacts)
		for _, dep := range p.Deps {
			if f, ok := facts[dep]; ok {
				imported[dep] = f
			}
		}
		diags, export := analyzePackage(enabled, fset, files, pkg, info, imported)
		facts[p.ImportPath] = export
		if !p.DepOnly {
			results = append(results, loadResult{Path: p.ImportPath, Diags: diags})
		}
	}
	return results, nil
}

// goList shells out to `go list -export -json -deps`.
func goList(patterns []string, dir string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	return pkgs, nil
}

// topoOrder returns packages with dependencies before dependents.
func topoOrder(pkgs []*listPkg, byPath map[string]*listPkg) []*listPkg {
	var out []*listPkg
	state := make(map[string]int, len(pkgs)) // 0 new, 1 visiting, 2 done
	var visit func(p *listPkg)
	visit = func(p *listPkg) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, dep := range p.Imports {
			if d, ok := byPath[dep]; ok {
				visit(d)
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// ensureRepoRoot is a convenience for CI/Makefile callers: when run from the
// tools directory, hop to the module root so ./... means the whole repo.
func ensureRepoRoot() {
	if _, err := os.Stat("go.mod"); err == nil {
		return
	}
	for dir, _ := os.Getwd(); dir != "/" && dir != "."; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			_ = os.Chdir(dir)
			return
		}
	}
}
