package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// sink is one direct invariant violation inside a function body.
type sink struct {
	pos  token.Pos
	desc string
}

// callEdge is one resolved call site inside a function body.
type callEdge struct {
	callee    *types.Func
	iface     bool // dispatches through an interface
	goroutine bool // call happens on a spawned goroutine (go stmt / its closure)
	pos       token.Pos
}

// funcNode is one declared function's contribution to the call/sink graph.
// FuncLit bodies are attributed to their enclosing declared function.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl

	deterministic bool // //hammerlint:deterministic root
	nonblocking   bool // //hammerlint:nonblocking root
	excluded      bool // //hammerlint:ignore on the decl

	detSinks   []sink // determinism violations committed directly
	blockSinks []sink // bare blocking sends performed directly
	calls      []callEdge
}

// callGraph lazily builds the per-function graph for the taint analyzers.
func (p *Pass) callGraph() map[*types.Func]*funcNode {
	if p.nodes != nil {
		return p.nodes
	}
	p.nodes = make(map[*types.Func]*funcNode)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &funcNode{
				obj:           obj,
				decl:          fd,
				deterministic: hasDirective(fd, "deterministic"),
				nonblocking:   hasDirective(fd, "nonblocking"),
				excluded:      hasDirective(fd, "ignore"),
			}
			if !node.excluded {
				p.scanBody(node, fd.Body)
			}
			p.nodes[obj] = node
		}
	}
	return p.nodes
}

// scanBody collects sinks and call edges from a function body, including
// nested FuncLits. Bodies of `go func(){...}()` statements still contribute
// determinism sinks (a goroutine feeding a deterministic computation is at
// least as suspect) but not blocking sinks — a send in a spawned goroutine
// does not block the caller.
func (p *Pass) scanBody(node *funcNode, body *ast.BlockStmt) {
	var walk func(n ast.Node, inGoroutine bool)
	walk = func(n ast.Node, inGoroutine bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				walk(n.Call.Fun, true)
				for _, a := range n.Call.Args {
					walk(a, true)
				}
				p.scanCall(node, n.Call, true)
				return false
			case *ast.CallExpr:
				p.scanCall(node, n, inGoroutine)
				return true
			case *ast.SendStmt:
				if !inGoroutine && !p.ignoredPos(n.Arrow) && !insideSelectComm(node.decl, n) {
					node.blockSinks = append(node.blockSinks, sink{
						pos:  n.Arrow,
						desc: "bare blocking channel send (wrap in a select with a default or quit case, or use a bounded queue)",
					})
				}
				return true
			case *ast.RangeStmt:
				p.scanRange(node, n)
				return true
			}
			return true
		})
	}
	walk(body, false)
}

// insideSelectComm reports whether the send statement is the communication
// clause of a select (the bounded-queue discipline: the select's other cases
// — default, quit, timeout — bound the wait).
func insideSelectComm(decl *ast.FuncDecl, send *ast.SendStmt) bool {
	found := false
	ast.Inspect(decl, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return !found
		}
		for _, clause := range sel.Body.List {
			if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == send {
				found = true
			}
		}
		return !found
	})
	return found
}

// taintTable is the fixpoint result: symbol key -> reason chain.
type taintTable struct {
	reasons map[string]string
	// methods lists tainted *methods* (local and imported) for interface
	// dispatch resolution.
	methods []taintedMethod
	// edgeOK filters which call edges propagate (nil = all).
	edgeOK func(callEdge) bool
}

type taintedMethod struct {
	named  *types.Named // receiver type
	name   string
	reason string
}

// propagateTaint runs the shared fixpoint: seed with imported facts and
// local direct sinks, then close over static calls. edgeOK, when non-nil,
// filters which call edges carry taint (sendblock skips goroutine edges).
func (p *Pass) propagateTaint(
	localSinks func(*funcNode) []sink,
	importedFacts func(*pkgFacts) []factEntry,
	edgeOK func(callEdge) bool,
) *taintTable {
	nodes := p.callGraph()
	t := &taintTable{reasons: make(map[string]string), edgeOK: edgeOK}

	// Seed: imported facts.
	importedPkgs := p.transitiveImports()
	for path, facts := range p.Imported {
		for _, e := range importedFacts(facts) {
			key := factKey(path, e.Recv, e.Name)
			t.reasons[key] = e.Reason
			if e.Recv != "" {
				if named := lookupNamed(importedPkgs[path], e.Recv); named != nil {
					t.methods = append(t.methods, taintedMethod{named: named, name: e.Name, reason: e.Reason})
				}
			}
		}
	}

	// Seed: local direct sinks.
	for obj, node := range nodes {
		if node.excluded {
			continue
		}
		if sinks := localSinks(node); len(sinks) > 0 {
			s := sinks[0]
			t.setTainted(obj, fmt.Sprintf("%s at %s", s.desc, p.Fset.Position(s.pos)))
		}
	}

	// Fixpoint over local call edges.
	for changed := true; changed; {
		changed = false
		for obj, node := range nodes {
			if node.excluded || t.reasons[symKey(obj)] != "" {
				continue
			}
			for _, edge := range node.calls {
				if edgeOK != nil && !edgeOK(edge) {
					continue
				}
				if reason, via := t.callReason(edge); reason != "" {
					t.setTainted(obj, fmt.Sprintf("calls %s: %s", via, reason))
					changed = true
					break
				}
			}
		}
	}
	return t
}

// setTainted records a function as tainted and, if it is a method, adds it
// to the interface-dispatch candidates.
func (t *taintTable) setTainted(obj *types.Func, reason string) {
	t.reasons[symKey(obj)] = reason
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedRecv(obj); named != nil {
			t.methods = append(t.methods, taintedMethod{named: named, name: obj.Name(), reason: reason})
		}
	}
}

// namedRecv returns a method's receiver named type (behind a pointer), or nil.
func namedRecv(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, _ := rt.(*types.Named)
	return named
}

// callReason returns the taint reason flowing through one call edge, plus a
// description of the callee, or "".
func (t *taintTable) callReason(edge callEdge) (reason, via string) {
	if edge.callee == nil {
		return "", ""
	}
	if !edge.iface {
		if r := t.reasons[symKey(edge.callee)]; r != "" {
			return r, displayName(edge.callee)
		}
		return "", ""
	}
	// Interface dispatch: any known-tainted method implementing the callee's
	// interface with the same name taints the call.
	iface := interfaceOf(edge.callee)
	if iface == nil {
		return "", ""
	}
	for _, m := range t.methods {
		if m.name != edge.callee.Name() {
			continue
		}
		if types.Implements(m.named, iface) || types.Implements(types.NewPointer(m.named), iface) {
			return m.reason, fmt.Sprintf("%s.%s (via interface method %s)", m.named.Obj().Name(), m.name, edge.callee.Name())
		}
	}
	return "", ""
}

// interfaceOf returns the interface an abstract method belongs to.
func interfaceOf(f *types.Func) *types.Interface {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// reportFromRoots walks forward from annotated roots over local calls,
// reporting direct sinks in every reachable local function and tainted
// calls that leave the package (or dispatch through interfaces).
func (p *Pass) reportFromRoots(
	analyzer string,
	isRoot func(*funcNode) bool,
	localSinks func(*funcNode) []sink,
	t *taintTable,
) {
	nodes := p.callGraph()

	var queue []*funcNode
	seen := make(map[*types.Func]bool)
	rootOf := make(map[*types.Func]string)
	for obj, node := range nodes {
		if isRoot(node) && !node.excluded {
			queue = append(queue, node)
			seen[obj] = true
			rootOf[obj] = displayName(obj)
		}
	}
	// Deterministic worklist order for stable output.
	sort.Slice(queue, func(i, j int) bool { return queue[i].obj.Pos() < queue[j].obj.Pos() })

	reported := make(map[string]bool)
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		root := rootOf[node.obj]

		for _, s := range localSinks(node) {
			key := fmt.Sprintf("%v|%s", s.pos, s.desc)
			if reported[key] {
				continue
			}
			reported[key] = true
			p.reportf(analyzer, s.pos, "%s in %s (reachable from root %s)", s.desc, displayName(node.obj), root)
		}
		for _, edge := range node.calls {
			if edge.callee == nil {
				continue
			}
			if t.edgeOK != nil && !t.edgeOK(edge) {
				continue
			}
			// Local static callee: keep walking.
			if callee, ok := nodes[edge.callee]; ok && !edge.iface {
				if !callee.excluded && !seen[edge.callee] {
					seen[edge.callee] = true
					rootOf[edge.callee] = root
					queue = append(queue, callee)
				}
				continue
			}
			// External or interface call: report if tainted.
			if reason, via := t.callReason(edge); reason != "" && !p.ignoredPos(edge.pos) {
				key := fmt.Sprintf("%v|%s", edge.pos, reason)
				if !reported[key] {
					reported[key] = true
					p.reportf(analyzer, edge.pos, "call to %s is not allowed from root %s: %s", via, root, reason)
				}
			}
			// Interface call to LOCAL implementations: also walk them so
			// their own sinks are positioned precisely.
			if edge.iface {
				iface := interfaceOf(edge.callee)
				if iface == nil {
					continue
				}
				for obj, cand := range nodes {
					if cand.excluded || seen[obj] || obj.Name() != edge.callee.Name() {
						continue
					}
					named := namedRecv(obj)
					if named == nil {
						continue
					}
					if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
						seen[obj] = true
						rootOf[obj] = root
						queue = append(queue, cand)
					}
				}
			}
		}
	}
}

// exportTaintFacts flattens a taint table into fact entries for this
// package's functions.
func (p *Pass) exportTaintFacts(t *taintTable) []factEntry {
	var out []factEntry
	for obj := range p.callGraph() {
		if reason := t.reasons[symKey(obj)]; reason != "" {
			out = append(out, factEntry{Recv: recvName(obj), Name: obj.Name(), Reason: reason})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return factKey("", out[i].Recv, out[i].Name) < factKey("", out[j].Recv, out[j].Name)
	})
	return out
}

// transitiveImports maps package path -> *types.Package for everything
// reachable from this package's imports.
func (p *Pass) transitiveImports() map[string]*types.Package {
	out := make(map[string]*types.Package)
	var visit func(pkg *types.Package)
	visit = func(pkg *types.Package) {
		if _, ok := out[pkg.Path()]; ok {
			return
		}
		out[pkg.Path()] = pkg
		for _, imp := range pkg.Imports() {
			visit(imp)
		}
	}
	for _, imp := range p.Pkg.Imports() {
		visit(imp)
	}
	return out
}

// lookupNamed finds a named type in a package scope.
func lookupNamed(pkg *types.Package, name string) *types.Named {
	if pkg == nil {
		return nil
	}
	obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}
