// Package atomicmix exercises the atomicptr analyzer: a field touched by
// sync/atomic functions must never also be accessed directly.
package atomicmix

import "sync/atomic"

type stats struct {
	hits  int64
	total int64
}

func (s *stats) record() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) read() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) badRead() int64 {
	return s.hits // want `mixed access is a data race`
}

func (s *stats) badWrite() {
	s.hits = 0 // want `mixed access is a data race`
}

// plain only ever touches total non-atomically: consistent, so fine.
func (s *stats) plain() int64 {
	s.total++
	return s.total
}

// fresh initializes before the value is shared.
func fresh() *stats {
	s := &stats{}
	s.hits = 1
	return s
}

func (s *stats) ignored() int64 {
	//hammerlint:ignore racy read feeds debug logs only
	return s.hits
}
