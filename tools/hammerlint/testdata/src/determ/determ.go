// Package determ exercises the determinism analyzer: wall clocks, ambient
// randomness, map iteration order, gob map encoding, the sorted-iteration
// idioms that must stay clean, and the //hammerlint:ignore escape hatch.
package determ

import (
	"bytes"
	"encoding/gob"
	"maps"
	"math/rand"
	"slices"
	"sort"
	"time"
)

// State mimics the repo's ManagerState: a map-backed structure whose
// encoding must be byte-stable across replicas.
type State struct {
	Scores map[string]int64
}

// EncodeUnsorted is the acceptance-criterion shape: gob-encoding a value
// that contains a map serializes in iteration order.
//
//hammerlint:deterministic
func (s *State) EncodeUnsorted() []byte {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	_ = enc.Encode(s) // want `gob-encodes .*State which contains a map`
	return buf.Bytes()
}

// EncodeSorted is the repo's canonical fix: collect, sort, then encode.
//
//hammerlint:deterministic
func (s *State) EncodeSorted() []byte {
	keys := make([]string, 0, len(s.Scores))
	for k := range s.Scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, k := range keys {
		_ = enc.Encode(k)
		_ = enc.Encode(s.Scores[k])
	}
	return buf.Bytes()
}

// scheduleAt is the other acceptance-criterion shape: a wall clock inside
// schedule computation.
//
//hammerlint:deterministic
func scheduleAt(round uint64) int64 {
	return int64(round) + time.Now().UnixNano() // want `calls time.Now`
}

func nowHelper() int64 {
	return time.Now().UnixNano() // want `calls time.Now`
}

// viaHelper reaches the clock through a local call: the sink is reported at
// the helper, attributed to this root.
//
//hammerlint:deterministic
func viaHelper() int64 {
	return nowHelper()
}

// freeRunning is NOT reachable from any deterministic root, so its clock
// read is fine.
func freeRunning() int64 {
	return time.Now().UnixNano()
}

//hammerlint:deterministic
func shuffleAmbient(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `ambient process-seeded randomness`
}

// shuffleSeeded uses an explicitly seeded source — deterministic by design
// (the shared-seed schedule shuffle depends on exactly this).
//
//hammerlint:deterministic
func shuffleSeeded(xs []int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

//hammerlint:deterministic
func hashValues(m map[string]uint64) uint64 {
	var h uint64
	for _, v := range m { // want `iterates map .* in unspecified order`
		h = h*31 + v
	}
	return h
}

// sumValues accumulates commutatively: iteration order cannot change the
// result.
//
//hammerlint:deterministic
func sumValues(m map[string]uint64) uint64 {
	var total uint64
	for _, v := range m {
		total += v
	}
	return total
}

// pruneBelow is the conditional-prune idiom: delete is order-independent.
//
//hammerlint:deterministic
func pruneBelow(m map[string]uint64, floor uint64) {
	for k, v := range m {
		if v < floor {
			delete(m, k)
		}
	}
}

//hammerlint:deterministic
func anyKey(m map[string]int) string {
	for k := range m { // want `iterates map .* in unspecified order`
		return k
	}
	return ""
}

//hammerlint:deterministic
func unsortedKeys(m map[string]int) []string {
	return slices.Collect(maps.Keys(m)) // want `maps\.Keys in unspecified order`
}

//hammerlint:deterministic
func sortedKeys(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

//hammerlint:deterministic
func ignoredClock() int64 {
	//hammerlint:ignore logging timestamp only, never part of a digest
	return time.Now().UnixNano()
}

//hammerlint:deterministic
func encodeSlice(xs []uint64) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(xs)
	return buf.Bytes()
}

// clock models in-package interface dispatch: the analyzer must find the
// local implementation behind the interface call.
type clock interface{ now() int64 }

type wallClock struct{}

func (wallClock) now() int64 {
	return time.Now().UnixNano() // want `calls time.Now`
}

//hammerlint:deterministic
func viaInterface(c clock) int64 {
	return c.now() // want `via interface method now`
}
