// Package determcross exercises cross-package taint propagation: sinks live
// in determdep, roots live here, and the connection flows through exported
// facts — including through an interface method satisfied by an imported
// concrete type.
package determcross

import "hammerlint/fixtures/determdep"

type ticker interface{ Now() int64 }

//hammerlint:deterministic
func Stamp() string {
	return determdep.NowString() // want `call to determdep.NowString`
}

//hammerlint:deterministic
func StampVia(t ticker) int64 {
	return t.Now() // want `via interface method Now`
}

//hammerlint:deterministic
func Double(x int64) int64 {
	return determdep.Pure(x)
}

// NewTicker hands the tainted implementation to callers.
func NewTicker() ticker {
	return determdep.Clock{}
}
