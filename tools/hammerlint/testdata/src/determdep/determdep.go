// Package determdep is the dependency half of the cross-package determinism
// fixture: it has no deterministic roots of its own (so nothing is reported
// here), but exports taint facts that determcross must observe.
package determdep

import "time"

// NowString reads the wall clock: callers inherit the taint via facts.
func NowString() string {
	return time.Now().String()
}

// Clock ticks off the wall clock; its method taints interface dispatch in
// importing packages.
type Clock struct{}

// Now returns wall-clock nanos.
func (Clock) Now() int64 {
	return time.Now().UnixNano()
}

// Pure is deterministic and must not poison callers.
func Pure(x int64) int64 {
	return x * 2
}
