module hammerlint/fixtures

go 1.24
