// Package guarded exercises the guardedby analyzer: annotated fields must be
// accessed with the named sibling mutex held in the same function.
package guarded

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	rw    sync.RWMutex
	table map[string]int // guarded by rw
}

func (c *counter) incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) badIncr() {
	c.n++ // want `write to c.n guarded by "mu" without holding`
}

func (c *counter) badRead() int {
	return c.n // want `read c.n guarded by "mu" without holding`
}

func (c *counter) lookup(k string) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.table[k]
}

func (c *counter) goodStore(k string, v int) {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.table[k] = v
}

func (c *counter) badStore(k string, v int) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.table[k] = v // want `holding only c.rw.RLock`
}

// flushLocked is called with mu already held: the *Locked suffix exempts it.
func (c *counter) flushLocked() {
	c.n = 0
}

// newCounter initializes a freshly built value no other goroutine can see.
func newCounter() *counter {
	c := &counter{table: map[string]int{}}
	c.n = 1
	return c
}

// branchy acquires the lock only inside a branch; the state must not leak
// past it.
func (c *counter) branchy(b bool) {
	if b {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want `without holding`
}

// sorted closures inherit the lock state of their definition point.
func (c *counter) sorted() {
	c.mu.Lock()
	defer c.mu.Unlock()
	bump := func() { c.n++ }
	bump()
}

// spawn goroutines must take their own locks.
func (c *counter) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `without holding`
	}()
}

func (c *counter) ignored() int {
	//hammerlint:ignore snapshot read is intentionally racy (metrics only)
	return c.n
}

// orphan's annotation names a guard that does not exist.
type orphan struct {
	count int // guarded by missing // want `no mutex field missing`
}
