// Package obs mirrors the internal/obs trace-collector contract, pinning
// both halves of its enforcement story:
//
//   - The record path is //hammerlint:nonblocking — it is called from the
//     mempool admit path, the engine goroutine and the commit loop, so it
//     may take a shard lock but must never park on a channel.
//   - record stamps the wall clock internally, so the collector is
//     determinism-tainted by construction: any //hammerlint:deterministic
//     root that reaches it is flagged without a dedicated analyzer rule.
//     Tracing can observe replayable code but never run inside it.
package obs

import (
	"sync"
	"time"
)

type tracer struct {
	mu      sync.Mutex
	times   map[uint64]int64
	spill   chan uint64
	evicted chan uint64
}

// record is the collector hot path: wall-clock stamp under a short lock.
// The time.Now call is what taints every deterministic caller below.
//
//hammerlint:nonblocking
func (t *tracer) record(id uint64) {
	now := time.Now().UnixNano() // want `calls time.Now`
	t.mu.Lock()
	t.times[id] = now
	t.mu.Unlock()
}

// recordSpillBad ships evictions over a bare channel send: a full consumer
// would park the consensus goroutine on a trace buffer.
//
//hammerlint:nonblocking
func (t *tracer) recordSpillBad(id uint64) {
	t.evicted <- id // want `bare blocking channel send`
}

// recordSpillGood sheds the sample when the buffer is full — tracing must
// never backpressure the paths it observes.
//
//hammerlint:nonblocking
func (t *tracer) recordSpillGood(id uint64) bool {
	select {
	case t.spill <- id:
		return true
	default:
		return false
	}
}

// replayCommit mimics a WAL replay root reaching into the collector: the
// taint flows from record's clock read, reported at the sink above.
//
//hammerlint:deterministic
func replayCommit(t *tracer, txs []uint64) {
	for _, id := range txs {
		t.record(id)
	}
}

// orderCommits is the shape replayable code must keep: derive everything
// from inputs, hand the IDs back, and let a non-deterministic caller do the
// recording.
//
//hammerlint:deterministic
func orderCommits(txs []uint64) []uint64 {
	out := make([]uint64, 0, len(txs))
	for _, id := range txs {
		out = append(out, id*2)
	}
	return out
}
