// Package sendblk exercises the sendblock analyzer: functions reachable from
// //hammerlint:nonblocking roots must not perform bare blocking sends.
package sendblk

type worker struct {
	in   chan int
	quit chan struct{}
}

//hammerlint:nonblocking
func (w *worker) submitBad(v int) {
	w.in <- v // want `bare blocking channel send`
}

// submitGood is the repo's bounded-queue discipline: the quit case bounds
// the wait.
//
//hammerlint:nonblocking
func (w *worker) submitGood(v int) bool {
	select {
	case w.in <- v:
		return true
	case <-w.quit:
		return false
	}
}

//hammerlint:nonblocking
func (w *worker) submitDefault(v int) bool {
	select {
	case w.in <- v:
		return true
	default:
		return false
	}
}

func (w *worker) forward(v int) {
	w.in <- v // want `bare blocking channel send`
}

//hammerlint:nonblocking
func (w *worker) viaHelper(v int) {
	w.forward(v)
}

// spawn's send happens on a spawned goroutine: it cannot block the caller.
//
//hammerlint:nonblocking
func (w *worker) spawn(v int) {
	go func() {
		w.in <- v
	}()
}

// unannotated is not reachable from any nonblocking root, so its bare send
// is not reported.
func (w *worker) unannotated(v int) {
	w.in <- v
}

//hammerlint:nonblocking
func (w *worker) shutdownFlush(v int) {
	//hammerlint:ignore shutdown path may block; bounded by process exit
	w.in <- v
}
