// Package wirecodec exercises the determinism analyzer on the repo's
// append-style wire codec idiom (internal/wire): hand-rolled binary encoders
// must not fold map iteration order or wall-clock reads into bytes that get
// digested or diffed across replicas.
package wirecodec

import (
	"encoding/binary"
	"time"
)

// scores mimics core's reputation map: ValidatorID -> score.
type scores map[uint32]int64

// appendU32 and appendI64 stand in for wire.AppendU32/AppendVarint.
func appendU32(buf []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(buf, v)
}

func appendI64(buf []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(buf, uint64(v))
}

// AppendScoresUnsorted is the bug the wire migration must not reintroduce:
// a deterministic-annotated encoder walking a map in iteration order.
//
//hammerlint:deterministic
func AppendScoresUnsorted(buf []byte, s scores) []byte {
	for id, sc := range s { // want `iterates map .* in unspecified order`
		buf = appendU32(buf, id)
		buf = appendI64(buf, sc)
	}
	return buf
}

// AppendScoresSorted is the canonical fix, the shape core/state.go uses:
// collect IDs, insertion-sort them, then append in ID order.
//
//hammerlint:deterministic
func AppendScoresSorted(buf []byte, s scores) []byte {
	ids := make([]uint32, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	for _, id := range ids {
		buf = appendU32(buf, id)
		buf = appendI64(buf, s[id])
	}
	return buf
}

// AppendStampedHeader folds a wall-clock read into encoded bytes — two
// replicas encoding the same header would disagree.
//
//hammerlint:deterministic
func AppendStampedHeader(buf []byte, round uint64) []byte {
	buf = binary.BigEndian.AppendUint64(buf, round)
	return appendI64(buf, time.Now().UnixNano()) // want `calls time.Now`
}

// AppendHeader carries the timestamp as a caller-supplied field, like the
// real codec: deterministic given its inputs.
//
//hammerlint:deterministic
func AppendHeader(buf []byte, round uint64, createdNanos int64) []byte {
	buf = binary.BigEndian.AppendUint64(buf, round)
	return appendI64(buf, createdNanos)
}
