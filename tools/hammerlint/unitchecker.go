package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration cmd/go writes for `go vet
// -vettool=` invocations (the unitchecker protocol). Unknown fields are
// ignored by encoding/json, so this stays compatible across Go releases.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker executes one vet unit: analyze the package described by the
// cfg file, write the facts ("vetx") output, print diagnostics to stderr.
// Exit codes follow x/tools unitchecker: 0 = clean, 1 = load failure,
// 2 = diagnostics reported.
func runUnitchecker(enabled []*Analyzer, cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgPath, err)
	}

	// Only module packages are analyzed; everything else (the standard
	// library) just gets an empty facts file so cmd/go's action graph is
	// satisfied. The module check keeps `go vet -vettool=` fast: std
	// dependencies exit before parsing a single file.
	analyzed := inModule(cfg.ImportPath)
	if cfg.ModulePath != "" {
		analyzed = cfg.ImportPath == cfg.ModulePath || strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/")
	}
	if !analyzed {
		writeFacts(cfg.VetxOutput, &pkgFacts{})
		return
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts(cfg.VetxOutput, &pkgFacts{})
			return
		}
		fatalf("%v", err)
	}
	imp := newExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, info, err := typecheck(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil && pkg == nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts(cfg.VetxOutput, &pkgFacts{})
			return
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	imported := make(map[string]*pkgFacts)
	for path, vetx := range cfg.PackageVetx {
		if facts := readFacts(vetx); facts != nil {
			imported[path] = facts
		}
	}

	diags, export := analyzePackage(enabled, fset, files, pkg, info, imported)
	writeFacts(cfg.VetxOutput, export)
	if cfg.VetxOnly || len(diags) == 0 {
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	os.Exit(2)
}

// writeFacts persists a package's facts where cmd/go expects them.
func writeFacts(path string, facts *pkgFacts) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("writing facts: %v", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(facts); err != nil {
		fatalf("encoding facts: %v", err)
	}
}

// readFacts loads a dependency's facts; nil when absent or unreadable
// (missing facts degrade propagation, they do not fail the run).
func readFacts(path string) *pkgFacts {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	var facts pkgFacts
	if err := gob.NewDecoder(f).Decode(&facts); err != nil {
		return nil
	}
	return &facts
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hammerlint: "+format+"\n", args...)
	os.Exit(1)
}
